//! Practical Byzantine Fault Tolerance (Castro–Liskov), as Hyperledger
//! Fabric v0.6 used it, implemented sans-IO.
//!
//! Each [`PbftNode`] is a pure state machine: feed it requests, messages and
//! ticks; it returns [`Action`]s (sends, broadcasts, committed batches) for
//! the platform to wire onto the simulated network. The platform layer adds
//! the *bounded incoming message channel* whose overflow — O(N²) traffic at
//! high load — drops consensus messages, diverges views and stalls the
//! cluster beyond 16 nodes, exactly the failure mode the paper diagnosed
//! from Fabric's logs (Section 4.1.2).
//!
//! Protocol shape:
//! - requests batch at the primary (`batch_size`, the paper's 500, or a
//!   batch timeout);
//! - three phases: pre-prepare (primary broadcast, carries the batch),
//!   prepare and commit (all-to-all); a slot commits at quorum `n − f`,
//!   `f = ⌊(n−1)/3⌋`, and batches are *delivered strictly in sequence
//!   order* — so 12 nodes stop dead when 4 crash (quorum 9 > 8 alive,
//!   Figure 9) while 16 nodes recover via view change;
//! - view change: nodes time out on outstanding work, vote `ViewChange`,
//!   and adopt a view once a quorum votes for it; the new primary announces
//!   `NewView` and laggards catch up through the sync sub-protocol
//!   (`SyncRequest`/`SyncReply`) — also how partitioned nodes rejoin after
//!   the Figure 10 attack heals (the ~50 s recovery gap).
//!
//! Simplifications vs. the full protocol, documented in DESIGN.md:
//! view-change certificates are replaced by re-forwarding uncommitted
//! requests plus state sync — equivalent liveness/safety behaviour for
//! crash and partition faults, which are the faults the benchmark injects.
//! Checkpointing is a *horizon*, not the full sub-protocol: each replica
//! keeps the last [`PbftConfig::checkpoint_horizon`] committed batches and
//! folds older ones into a running checkpoint digest. A laggard asking for
//! history below the horizon receives the checkpoint instead and installs
//! it on one peer's word (real PBFT demands f + 1 matching proofs; the
//! benchmark injects crashes and partitions, never lying replicas).
//!
//! Retransmission is *bounded*: on a liveness timeout (and on view entry)
//! a replica re-forwards at most one batch worth of outstanding requests,
//! and sync replies carry at most [`SYNC_WINDOW`] batches (the laggard
//! requests the next window after applying one). In PBFT proper these
//! bounds come from clients owning retransmission and from the high/low
//! water marks; without them an overloaded cluster re-broadcasts its
//! entire backlog every timeout — O(backlog × n²) traffic per round —
//! which turns the ≥16-node collapse from "throughput degrades" into an
//! event storm that grows without bound.

use bb_crypto::Hash256;
use bb_sim::{SimDuration, SimTime};
use bb_types::NodeId;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// An opaque client request (an encoded transaction).
pub type Request = Vec<u8>;

/// Max committed batches per [`PbftMsg::SyncReply`]. A lagging replica
/// catches up window by window, requesting the next chunk after applying
/// one, instead of receiving the entire committed log in a single message.
pub const SYNC_WINDOW: usize = 20;

/// Protocol parameters.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Replica count.
    pub n: u32,
    /// Max requests per batch (Fabric's `batchSize`, default 500).
    pub batch_size: usize,
    /// Propose a partial batch after this long with pending requests.
    pub batch_timeout: SimDuration,
    /// Outstanding work older than this triggers a view change.
    pub view_timeout: SimDuration,
    /// Committed batches kept in memory per replica; older ones fold into
    /// the checkpoint digest and are garbage-collected. Sync requests below
    /// the horizon are answered with a [`PbftMsg::Checkpoint`] jump.
    pub checkpoint_horizon: usize,
}

impl Default for PbftConfig {
    fn default() -> Self {
        PbftConfig {
            n: 4,
            batch_size: 500,
            batch_timeout: SimDuration::from_millis(300),
            view_timeout: SimDuration::from_secs(5),
            // Generous: paper-scale runs commit hundreds of batches, so the
            // horizon only trims truly long sweeps; crashed replicas still
            // catch up batch-by-batch well inside it.
            checkpoint_horizon: 1024,
        }
    }
}

impl PbftConfig {
    /// Maximum tolerated Byzantine replicas.
    pub fn f(&self) -> u32 {
        (self.n - 1) / 3
    }

    /// Votes needed to prepare/commit/view-change: `n − f`.
    pub fn quorum(&self) -> usize {
        (self.n - self.f()) as usize
    }

    /// Primary replica of `view`.
    pub fn primary_of(&self, view: u64) -> NodeId {
        NodeId((view % self.n as u64) as u32)
    }
}

/// Wire messages between replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbftMsg {
    /// A backup forwards a client request to the primary.
    Forward(Request),
    /// Primary proposes a batch at `(view, seq)`.
    PrePrepare {
        /// Proposing view.
        view: u64,
        /// Sequence slot.
        seq: u64,
        /// Batch digest.
        digest: Hash256,
        /// The requests themselves.
        batch: Vec<Request>,
    },
    /// A replica vouches it accepted the pre-prepare.
    Prepare {
        /// Slot view.
        view: u64,
        /// Slot sequence.
        seq: u64,
        /// Batch digest.
        digest: Hash256,
    },
    /// A replica vouches the batch is prepared network-wide.
    Commit {
        /// Slot view.
        view: u64,
        /// Slot sequence.
        seq: u64,
        /// Batch digest.
        digest: Hash256,
    },
    /// Vote to move to `new_view`.
    ViewChange {
        /// Proposed view.
        new_view: u64,
        /// Voter's last committed sequence.
        last_committed: u64,
    },
    /// The new primary announces the view is live.
    NewView {
        /// The view now in force.
        view: u64,
        /// Highest sequence committed anywhere the primary knows of.
        committed_floor: u64,
    },
    /// Ask a peer for committed batches above `from_seq`.
    SyncRequest {
        /// Fetch batches with seq > this.
        from_seq: u64,
    },
    /// Committed batches for a lagging peer.
    SyncReply {
        /// `(seq, batch)` pairs in order.
        batches: Vec<(u64, Vec<Request>)>,
    },
    /// The requested history is below the sender's checkpoint horizon:
    /// jump to this checkpoint, then sync the remaining batches.
    Checkpoint {
        /// Highest sequence folded into the checkpoint.
        seq: u64,
        /// Running digest of every batch up to and including `seq`.
        digest: Hash256,
    },
}

impl PbftMsg {
    /// Approximate wire size in bytes (for the network cost model).
    pub fn byte_size(&self) -> u64 {
        const HEADER: u64 = 64; // envelope + signature
        match self {
            PbftMsg::Forward(r) => HEADER + r.len() as u64,
            PbftMsg::PrePrepare { batch, .. } => {
                HEADER + 48 + batch.iter().map(|r| r.len() as u64 + 4).sum::<u64>()
            }
            PbftMsg::Prepare { .. } | PbftMsg::Commit { .. } => HEADER + 48,
            PbftMsg::ViewChange { .. } => HEADER + 16,
            PbftMsg::NewView { .. } => HEADER + 16,
            PbftMsg::SyncRequest { .. } => HEADER + 8,
            PbftMsg::Checkpoint { .. } => HEADER + 40,
            PbftMsg::SyncReply { batches } => {
                HEADER
                    + batches
                        .iter()
                        .map(|(_, b)| 8 + b.iter().map(|r| r.len() as u64 + 4).sum::<u64>())
                        .sum::<u64>()
            }
        }
    }
}

/// What the platform must do after feeding the node an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send to one replica.
    Send(NodeId, PbftMsg),
    /// Send to every *other* replica. The node has already applied its own
    /// vote internally — do not loop the message back.
    Broadcast(PbftMsg),
    /// A batch committed at `seq`: execute it and append a block.
    CommitBatch {
        /// Sequence number (consecutive from 1).
        seq: u64,
        /// The ordered requests.
        batch: Vec<Request>,
    },
    /// The node jumped past garbage-collected history to a peer's
    /// checkpoint: batches `..= seq` will never be delivered here. The
    /// platform decides whether (and how) to transfer application state.
    InstallCheckpoint {
        /// Highest sequence covered by the checkpoint.
        seq: u64,
        /// The adopted checkpoint digest.
        digest: Hash256,
    },
}

#[derive(Debug, Default)]
struct Slot {
    view: u64,
    digest: Hash256,
    batch: Option<Vec<Request>>,
    prepares: HashSet<NodeId>,
    commits: HashSet<NodeId>,
    sent_commit: bool,
    commit_quorum: bool,
    delivered: bool,
}

fn batch_digest(batch: &[Request]) -> Hash256 {
    let mut parts: Vec<&[u8]> = Vec::with_capacity(batch.len() + 1);
    parts.push(b"pbft-batch");
    for r in batch {
        parts.push(r);
    }
    Hash256::digest_parts(&parts)
}

fn request_digest(r: &Request) -> Hash256 {
    Hash256::digest_parts(&[b"pbft-req", r])
}

/// One PBFT replica.
pub struct PbftNode {
    id: NodeId,
    config: PbftConfig,
    view: u64,
    /// Next sequence this primary will assign.
    next_seq: u64,
    slots: BTreeMap<u64, Slot>,
    last_committed: u64,
    /// Exactly the sequences in `(checkpoint_seq, last_committed]` — the
    /// retained window the sync sub-protocol serves from.
    committed_log: BTreeMap<u64, Vec<Request>>,
    /// Highest sequence folded into the checkpoint digest (0 = none).
    checkpoint_seq: u64,
    /// Chained digest of every garbage-collected batch up to
    /// `checkpoint_seq`, starting from `Hash256::ZERO`.
    checkpoint_digest: Hash256,
    /// Requests seen but not yet committed, for re-forwarding on view
    /// change. Ordered (by digest) so every retransmission path walks it
    /// in a deterministic order — a `HashMap` here would randomise message
    /// order, and with it the whole simulation, across runs.
    awaiting: BTreeMap<Hash256, Request>,
    /// Primary-side queue of requests not yet batched.
    pending: VecDeque<Request>,
    pending_digests: HashSet<Hash256>,
    view_votes: HashMap<u64, HashMap<NodeId, u64>>,
    batch_deadline: Option<SimTime>,
    view_deadline: Option<SimTime>,
    /// Highest view this node has voted for (escalation state).
    voted_view: u64,
}

impl PbftNode {
    /// Fresh replica in view 0.
    pub fn new(id: NodeId, config: PbftConfig) -> Self {
        PbftNode {
            id,
            config,
            view: 0,
            next_seq: 1,
            slots: BTreeMap::new(),
            last_committed: 0,
            committed_log: BTreeMap::new(),
            checkpoint_seq: 0,
            checkpoint_digest: Hash256::ZERO,
            awaiting: BTreeMap::new(),
            pending: VecDeque::new(),
            pending_digests: HashSet::new(),
            view_votes: HashMap::new(),
            batch_deadline: None,
            view_deadline: None,
            voted_view: 0,
        }
    }

    /// Replica restarting after a crash with `floor` batches recovered from
    /// its durable store: everything in-flight (slots, awaiting set, view
    /// votes, timers) is gone — that is the point — but committed history up
    /// to `floor` need not be re-fetched from peers. The caller follows up
    /// with a `SyncRequest { from_seq: floor }` to close the gap.
    pub fn resume_at(id: NodeId, config: PbftConfig, floor: u64) -> Self {
        let mut node = PbftNode::new(id, config);
        node.last_committed = floor;
        node.next_seq = floor + 1;
        // The durable store holds the *effects* of batches ≤ floor; the
        // request payloads themselves were volatile. Fold them into the
        // checkpoint digest position so sync serves only what is missing.
        node.checkpoint_seq = floor;
        node
    }

    /// Current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Is this replica the primary of the current view?
    pub fn is_primary(&self) -> bool {
        self.config.primary_of(self.view) == self.id
    }

    /// Highest contiguously committed sequence.
    pub fn last_committed(&self) -> u64 {
        self.last_committed
    }

    /// `(seq, digest)` of the current checkpoint — `(0, Hash256::ZERO)`
    /// until the committed log first overflows the horizon.
    pub fn checkpoint(&self) -> (u64, Hash256) {
        (self.checkpoint_seq, self.checkpoint_digest)
    }

    /// Committed batches currently held in memory (bounded by
    /// [`PbftConfig::checkpoint_horizon`]).
    pub fn committed_log_len(&self) -> usize {
        self.committed_log.len()
    }

    /// Requests seen and not yet committed.
    pub fn awaiting_count(&self) -> usize {
        self.awaiting.len()
    }

    /// Earliest time the platform should call [`PbftNode::on_tick`].
    pub fn next_wake(&self) -> Option<SimTime> {
        match (self.batch_deadline, self.view_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// A client request arrived at this replica.
    pub fn on_request(&mut self, req: Request, now: SimTime) -> Vec<Action> {
        let digest = request_digest(&req);
        if self.committed_digest(&digest) {
            return Vec::new();
        }
        self.awaiting.entry(digest).or_insert_with(|| req.clone());
        self.arm_view_timer(now);
        if self.is_primary() {
            self.enqueue_at_primary(req, digest, now)
        } else {
            vec![Action::Send(self.config.primary_of(self.view), PbftMsg::Forward(req))]
        }
    }

    fn committed_digest(&self, digest: &Hash256) -> bool {
        // Linear scan is fine at benchmark batch counts; committed requests
        // are also pruned from `awaiting`, which is the hot set.
        !self.awaiting.contains_key(digest) && self.pending_digests.contains(digest)
    }

    fn enqueue_at_primary(&mut self, req: Request, digest: Hash256, now: SimTime) -> Vec<Action> {
        if self.pending_digests.contains(&digest) {
            return Vec::new();
        }
        self.pending_digests.insert(digest);
        self.pending.push_back(req);
        let mut actions = Vec::new();
        while self.pending.len() >= self.config.batch_size {
            actions.extend(self.propose_batch(now));
        }
        if !self.pending.is_empty() && self.batch_deadline.is_none() {
            self.batch_deadline = Some(now + self.config.batch_timeout);
        }
        actions
    }

    fn propose_batch(&mut self, now: SimTime) -> Vec<Action> {
        let take = self.pending.len().min(self.config.batch_size);
        if take == 0 {
            return Vec::new();
        }
        let batch: Vec<Request> = self.pending.drain(..take).collect();
        for r in &batch {
            self.pending_digests.remove(&request_digest(r));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let digest = batch_digest(&batch);
        let slot = self.slots.entry(seq).or_default();
        slot.view = self.view;
        slot.digest = digest;
        slot.batch = Some(batch.clone());
        slot.prepares.insert(self.id);
        self.batch_deadline =
            if self.pending.is_empty() { None } else { Some(now + self.config.batch_timeout) };
        self.arm_view_timer(now);
        vec![Action::Broadcast(PbftMsg::PrePrepare { view: self.view, seq, digest, batch })]
    }

    /// A protocol message arrived (the platform has already dropped
    /// corrupted messages — signature verification failure).
    pub fn on_message(&mut self, from: NodeId, msg: PbftMsg, now: SimTime) -> Vec<Action> {
        match msg {
            PbftMsg::Forward(req) => {
                let digest = request_digest(&req);
                self.awaiting.entry(digest).or_insert_with(|| req.clone());
                self.arm_view_timer(now);
                if self.is_primary() {
                    self.enqueue_at_primary(req, digest, now)
                } else {
                    Vec::new() // not the primary anymore; the sender will retry after a view change
                }
            }
            PbftMsg::PrePrepare { view, seq, digest, batch } => {
                self.on_preprepare(from, view, seq, digest, batch, now)
            }
            PbftMsg::Prepare { view, seq, digest } => self.on_prepare(from, view, seq, digest, now),
            PbftMsg::Commit { view, seq, digest } => self.on_commit(from, view, seq, digest, now),
            PbftMsg::ViewChange { new_view, last_committed } => {
                self.on_view_change(from, new_view, last_committed, now)
            }
            PbftMsg::NewView { view, committed_floor } => {
                self.on_new_view(from, view, committed_floor, now)
            }
            PbftMsg::SyncRequest { from_seq } => self.on_sync_request(from, from_seq),
            PbftMsg::SyncReply { batches } => self.on_sync_reply(from, batches, now),
            PbftMsg::Checkpoint { seq, digest } => self.on_checkpoint(from, seq, digest, now),
        }
    }

    fn on_preprepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: u64,
        digest: Hash256,
        batch: Vec<Request>,
        now: SimTime,
    ) -> Vec<Action> {
        if view != self.view || from != self.config.primary_of(view) {
            return Vec::new();
        }
        if seq <= self.last_committed {
            return Vec::new();
        }
        if batch_digest(&batch) != digest {
            return Vec::new(); // malformed proposal
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.batch.is_some() && slot.digest != digest {
            return Vec::new(); // conflicting proposal for an occupied slot
        }
        slot.view = view;
        slot.digest = digest;
        slot.batch = Some(batch);
        slot.prepares.insert(from);
        slot.prepares.insert(self.id);
        self.arm_view_timer(now);
        let mut actions = vec![Action::Broadcast(PbftMsg::Prepare { view, seq, digest })];
        actions.extend(self.check_prepared(seq));
        actions.extend(self.try_deliver(now));
        actions
    }

    fn on_prepare(
        &mut self,
        from: NodeId,
        view: u64,
        seq: u64,
        digest: Hash256,
        now: SimTime,
    ) -> Vec<Action> {
        if view != self.view || seq <= self.last_committed {
            return Vec::new();
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.batch.is_some() && slot.digest != digest {
            return Vec::new();
        }
        slot.view = view;
        if slot.batch.is_none() {
            slot.digest = digest;
        }
        slot.prepares.insert(from);
        let mut actions = self.check_prepared(seq);
        // Our own commit vote may have completed the quorum.
        actions.extend(self.try_deliver(now));
        actions
    }

    fn check_prepared(&mut self, seq: u64) -> Vec<Action> {
        let quorum = self.config.quorum();
        let view = self.view;
        let id = self.id;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return Vec::new();
        };
        if slot.sent_commit || slot.prepares.len() < quorum {
            return Vec::new();
        }
        slot.sent_commit = true;
        slot.commits.insert(id);
        if slot.commits.len() >= quorum {
            // Our own vote can complete the quorum: with exactly n − f
            // commit broadcasts in flight, a replica that already heard the
            // others must not wait for a message that will never come.
            slot.commit_quorum = true;
        }
        let digest = slot.digest;
        vec![Action::Broadcast(PbftMsg::Commit { view, seq, digest })]
    }

    fn on_commit(
        &mut self,
        from: NodeId,
        view: u64,
        seq: u64,
        digest: Hash256,
        now: SimTime,
    ) -> Vec<Action> {
        if view != self.view || seq <= self.last_committed {
            return Vec::new();
        }
        let quorum = self.config.quorum();
        let slot = self.slots.entry(seq).or_default();
        if slot.batch.is_some() && slot.digest != digest {
            return Vec::new();
        }
        slot.view = view;
        if slot.batch.is_none() {
            slot.digest = digest;
        }
        slot.commits.insert(from);
        if slot.commits.len() >= quorum {
            slot.commit_quorum = true;
        }
        self.try_deliver(now)
    }

    /// Deliver committed batches strictly in order.
    fn try_deliver(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        loop {
            let next = self.last_committed + 1;
            let ready = self
                .slots
                .get(&next)
                .map(|s| s.commit_quorum && s.batch.is_some() && !s.delivered)
                .unwrap_or(false);
            if !ready {
                break;
            }
            let slot = self.slots.get_mut(&next).expect("checked above");
            slot.delivered = true;
            let batch = slot.batch.clone().expect("checked above");
            for r in &batch {
                self.awaiting.remove(&request_digest(r));
            }
            self.committed_log.insert(next, batch.clone());
            self.last_committed = next;
            actions.push(Action::CommitBatch { seq: next, batch });
        }
        self.gc_committed_log();
        if !actions.is_empty() {
            // Progress: reset (or clear) the liveness timer.
            self.view_deadline = if self.has_outstanding_work() {
                Some(now + self.config.view_timeout)
            } else {
                None
            };
        }
        actions
    }

    fn has_outstanding_work(&self) -> bool {
        !self.awaiting.is_empty()
            || self.slots.range(self.last_committed + 1..).any(|(_, s)| !s.delivered && s.batch.is_some())
    }

    fn arm_view_timer(&mut self, now: SimTime) {
        if self.view_deadline.is_none() && self.has_outstanding_work() {
            self.view_deadline = Some(now + self.config.view_timeout);
        }
    }

    /// Timer poll: the platform calls this at (or after) `next_wake`.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        if let Some(bd) = self.batch_deadline {
            if now >= bd {
                self.batch_deadline = None;
                if self.is_primary() {
                    actions.extend(self.propose_batch(now));
                }
            }
        }
        if let Some(vd) = self.view_deadline {
            if now >= vd && self.has_outstanding_work() {
                // Spread outstanding requests: like a PBFT client that got
                // no reply, broadcast them so every replica arms its
                // liveness timer and can join the view change. Bounded to
                // one batch worth per timeout — commits prune `awaiting`,
                // so later windows surface on later timeouts.
                for req in self.awaiting.values().take(self.config.batch_size) {
                    actions.push(Action::Broadcast(PbftMsg::Forward(req.clone())));
                }
                // Escalate: vote for the next view above anything voted so far.
                let target = (self.view + 1).max(self.voted_view + 1);
                self.voted_view = target;
                self.view_votes
                    .entry(target)
                    .or_default()
                    .insert(self.id, self.last_committed);
                self.view_deadline = Some(now + self.config.view_timeout * 2);
                actions.push(Action::Broadcast(PbftMsg::ViewChange {
                    new_view: target,
                    last_committed: self.last_committed,
                }));
                actions.extend(self.maybe_enter_view(target, now));
            }
        }
        actions
    }

    fn on_view_change(
        &mut self,
        from: NodeId,
        new_view: u64,
        last_committed: u64,
        now: SimTime,
    ) -> Vec<Action> {
        if new_view <= self.view {
            return Vec::new();
        }
        self.view_votes.entry(new_view).or_default().insert(from, last_committed);
        let mut actions = Vec::new();
        // Join rule: once f+1 replicas vote for a view, vote with them even
        // without a local timeout (prevents slow-timer stragglers from
        // blocking the quorum).
        let votes = self.view_votes.get(&new_view).map(|v| v.len()).unwrap_or(0);
        if votes > self.config.f() as usize && self.voted_view < new_view {
            self.voted_view = new_view;
            self.view_votes
                .entry(new_view)
                .or_default()
                .insert(self.id, self.last_committed);
            actions.push(Action::Broadcast(PbftMsg::ViewChange {
                new_view,
                last_committed: self.last_committed,
            }));
        }
        actions.extend(self.maybe_enter_view(new_view, now));
        actions
    }

    fn maybe_enter_view(&mut self, new_view: u64, now: SimTime) -> Vec<Action> {
        let quorum = self.config.quorum();
        let Some(votes) = self.view_votes.get(&new_view) else {
            return Vec::new();
        };
        if votes.len() < quorum || new_view <= self.view {
            return Vec::new();
        }
        let committed_floor = votes.values().copied().max().unwrap_or(0).max(self.last_committed);
        self.enter_view(new_view, now);
        let mut actions = Vec::new();
        if self.is_primary() {
            self.next_seq = committed_floor + 1;
            actions.push(Action::Broadcast(PbftMsg::NewView { view: new_view, committed_floor }));
            if self.last_committed < committed_floor {
                // The new primary itself lags; pull state from any voter.
                if let Some(peer) = self.any_peer() {
                    actions.push(Action::Send(
                        peer,
                        PbftMsg::SyncRequest { from_seq: self.last_committed },
                    ));
                }
            }
            actions.extend(self.repropose_awaiting(now));
        } else {
            actions.extend(self.after_view_entry(committed_floor, now));
        }
        actions
    }

    fn on_new_view(&mut self, from: NodeId, view: u64, committed_floor: u64, now: SimTime) -> Vec<Action> {
        if view < self.view || from != self.config.primary_of(view) {
            return Vec::new();
        }
        if view > self.view {
            self.enter_view(view, now);
        }
        self.after_view_entry(committed_floor, now)
    }

    fn after_view_entry(&mut self, committed_floor: u64, now: SimTime) -> Vec<Action> {
        let mut actions = Vec::new();
        if self.last_committed < committed_floor {
            actions.push(Action::Send(
                self.config.primary_of(self.view),
                PbftMsg::SyncRequest { from_seq: self.last_committed },
            ));
        }
        // Re-forward outstanding requests to the new primary — one batch
        // worth now; the liveness timer re-forwards the rest window by
        // window as earlier ones commit.
        let primary = self.config.primary_of(self.view);
        if primary != self.id {
            for req in self.awaiting.values().take(self.config.batch_size) {
                actions.push(Action::Send(primary, PbftMsg::Forward(req.clone())));
            }
        }
        self.arm_view_timer(now);
        actions
    }

    fn repropose_awaiting(&mut self, now: SimTime) -> Vec<Action> {
        // In-flight window: re-propose a couple of batches, not the whole
        // backlog — backups re-forward theirs window by window too, and an
        // unbounded re-proposal burst at 20 nodes is O(backlog × n) clones.
        let reqs: Vec<Request> = self
            .awaiting
            .values()
            .take(2 * self.config.batch_size)
            .cloned()
            .collect();
        let mut actions = Vec::new();
        for req in reqs {
            let digest = request_digest(&req);
            actions.extend(self.enqueue_at_primary(req, digest, now));
        }
        // Flush a partial batch immediately: the view change already cost
        // seconds; don't wait for the batch timer.
        actions.extend(self.propose_batch(now));
        actions
    }

    fn enter_view(&mut self, view: u64, now: SimTime) {
        self.view = view;
        self.voted_view = self.voted_view.max(view);
        // Uncommitted slots from older views are abandoned; their requests
        // live on in `awaiting` and get re-proposed.
        self.slots.retain(|&seq, slot| seq <= self.last_committed || slot.delivered);
        self.pending.clear();
        self.pending_digests.clear();
        self.view_votes.retain(|&v, _| v > view);
        self.view_deadline =
            if self.has_outstanding_work() { Some(now + self.config.view_timeout) } else { None };
        self.batch_deadline = None;
    }

    fn any_peer(&self) -> Option<NodeId> {
        (0..self.config.n).map(NodeId).find(|&p| p != self.id)
    }

    fn on_sync_request(&mut self, from: NodeId, from_seq: u64) -> Vec<Action> {
        if from_seq < self.checkpoint_seq {
            // The batches the peer needs first were garbage-collected:
            // offer the checkpoint jump; the peer follows up with a
            // SyncRequest from the checkpoint for the retained window.
            return vec![Action::Send(
                from,
                PbftMsg::Checkpoint { seq: self.checkpoint_seq, digest: self.checkpoint_digest },
            )];
        }
        let batches: Vec<(u64, Vec<Request>)> = self
            .committed_log
            .range(from_seq + 1..)
            .take(SYNC_WINDOW)
            .map(|(&s, b)| (s, b.clone()))
            .collect();
        if batches.is_empty() {
            return Vec::new();
        }
        vec![Action::Send(from, PbftMsg::SyncReply { batches })]
    }

    fn on_sync_reply(
        &mut self,
        from: NodeId,
        batches: Vec<(u64, Vec<Request>)>,
        now: SimTime,
    ) -> Vec<Action> {
        let full_window = batches.len() == SYNC_WINDOW;
        let mut actions = Vec::new();
        for (seq, batch) in batches {
            if seq != self.last_committed + 1 {
                continue; // only contiguous catch-up
            }
            for r in &batch {
                self.awaiting.remove(&request_digest(r));
            }
            self.committed_log.insert(seq, batch.clone());
            self.last_committed = seq;
            // Drop any stale slot occupying this sequence.
            self.slots.remove(&seq);
            actions.push(Action::CommitBatch { seq, batch });
        }
        self.gc_committed_log();
        if !actions.is_empty() {
            // A full window means the peer may hold more: request the next
            // chunk. (An empty or partial reply ends the catch-up loop.)
            if full_window {
                actions.push(Action::Send(
                    from,
                    PbftMsg::SyncRequest { from_seq: self.last_committed },
                ));
            }
            self.view_deadline = if self.has_outstanding_work() {
                Some(now + self.config.view_timeout)
            } else {
                None
            };
        }
        actions
    }

    /// A peer answered a sync request with a checkpoint jump: the history
    /// this node is missing was garbage-collected everywhere it asked.
    ///
    /// Installing on one peer's word is safe for the faults the benchmark
    /// injects (crashes, partitions — never lying replicas); full PBFT
    /// would demand f + 1 matching checkpoint proofs. Requests this node
    /// forwarded that committed inside the jumped-over range stay in
    /// `awaiting` (their bodies live in the discarded batches), so they may
    /// be re-proposed — the platform's own replay protection, not PBFT,
    /// dedups at that layer, and no benchmark scenario reaches this corner.
    fn on_checkpoint(
        &mut self,
        from: NodeId,
        seq: u64,
        digest: Hash256,
        now: SimTime,
    ) -> Vec<Action> {
        if seq <= self.last_committed {
            return Vec::new(); // stale offer; batch sync can proceed
        }
        self.checkpoint_seq = seq;
        self.checkpoint_digest = digest;
        self.last_committed = seq;
        // Everything at or below the checkpoint is history this node will
        // never replay: drop stale slots and pre-checkpoint log entries so
        // the retained-window invariant holds.
        self.committed_log = self.committed_log.split_off(&(seq + 1));
        self.slots.retain(|&s, _| s > seq);
        self.view_deadline = if self.has_outstanding_work() {
            Some(now + self.config.view_timeout)
        } else {
            None
        };
        vec![
            Action::InstallCheckpoint { seq, digest },
            // Fetch the peer's retained window above the checkpoint.
            Action::Send(from, PbftMsg::SyncRequest { from_seq: seq }),
        ]
    }

    /// Fold committed batches beyond the horizon into the checkpoint
    /// digest, oldest first, keeping `committed_log` bounded.
    fn gc_committed_log(&mut self) {
        while self.committed_log.len() > self.config.checkpoint_horizon {
            let (&seq, _) = self.committed_log.iter().next().expect("len > horizon >= 0");
            let batch = self.committed_log.remove(&seq).expect("key just observed");
            debug_assert_eq!(seq, self.checkpoint_seq + 1, "GC folds contiguously");
            self.checkpoint_digest = Hash256::digest_parts(&[
                b"pbft-ckpt",
                self.checkpoint_digest.as_bytes(),
                &seq.to_be_bytes(),
                batch_digest(&batch).as_bytes(),
            ]);
            self.checkpoint_seq = seq;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A zero-latency in-memory harness that delivers every action
    /// immediately — protocol logic without the network.
    struct Cluster {
        nodes: Vec<PbftNode>,
        committed: Vec<Vec<(u64, Vec<Request>)>>,
        /// Crashed replicas drop everything.
        down: Vec<bool>,
    }

    impl Cluster {
        fn new(n: u32) -> Cluster {
            let config = PbftConfig { n, batch_size: 3, ..PbftConfig::default() };
            Cluster {
                nodes: (0..n).map(|i| PbftNode::new(NodeId(i), config.clone())).collect(),
                committed: vec![Vec::new(); n as usize],
                down: vec![false; n as usize],
            }
        }

        fn dispatch(&mut self, from: NodeId, actions: Vec<Action>, now: SimTime) {
            let mut queue: VecDeque<(NodeId, NodeId, PbftMsg)> = VecDeque::new();
            let n = self.nodes.len() as u32;
            let absorb = |committed: &mut Vec<Vec<(u64, Vec<Request>)>>,
                              queue: &mut VecDeque<(NodeId, NodeId, PbftMsg)>,
                              src: NodeId,
                              acts: Vec<Action>| {
                for a in acts {
                    match a {
                        Action::Send(to, msg) => queue.push_back((src, to, msg)),
                        Action::Broadcast(msg) => {
                            for to in (0..n).map(NodeId).filter(|&t| t != src) {
                                queue.push_back((src, to, msg.clone()));
                            }
                        }
                        Action::CommitBatch { seq, batch } => {
                            committed[src.index()].push((seq, batch));
                        }
                        // State-transfer jump; the harness tracks only the
                        // batch stream, which resumes past the checkpoint.
                        Action::InstallCheckpoint { .. } => {}
                    }
                }
            };
            absorb(&mut self.committed, &mut queue, from, actions);
            while let Some((src, to, msg)) = queue.pop_front() {
                if self.down[src.index()] || self.down[to.index()] {
                    continue;
                }
                let acts = self.nodes[to.index()].on_message(src, msg, now);
                absorb(&mut self.committed, &mut queue, to, acts);
            }
        }

        fn request(&mut self, at: NodeId, req: &[u8], now: SimTime) {
            let acts = self.nodes[at.index()].on_request(req.to_vec(), now);
            self.dispatch(at, acts, now);
        }

        fn tick_all(&mut self, now: SimTime) {
            for i in 0..self.nodes.len() {
                if self.down[i] {
                    continue;
                }
                let acts = self.nodes[i].on_tick(now);
                self.dispatch(NodeId(i as u32), acts, now);
            }
        }
    }

    #[test]
    fn quorum_math() {
        for (n, f, q) in [(4u32, 1u32, 3usize), (7, 2, 5), (8, 2, 6), (12, 3, 9), (16, 5, 11), (32, 10, 22)] {
            let c = PbftConfig { n, ..PbftConfig::default() };
            assert_eq!(c.f(), f, "n={n}");
            assert_eq!(c.quorum(), q, "n={n}");
        }
    }

    #[test]
    fn full_batch_commits_on_all_replicas() {
        let mut c = Cluster::new(4);
        let now = SimTime::from_secs(1);
        // batch_size = 3: the third request triggers a proposal.
        c.request(NodeId(0), b"tx-1", now);
        c.request(NodeId(0), b"tx-2", now);
        c.request(NodeId(0), b"tx-3", now);
        for (i, log) in c.committed.iter().enumerate() {
            assert_eq!(log.len(), 1, "replica {i}");
            assert_eq!(log[0].0, 1);
            assert_eq!(log[0].1, vec![b"tx-1".to_vec(), b"tx-2".to_vec(), b"tx-3".to_vec()]);
        }
        assert!(c.nodes.iter().all(|n| n.last_committed() == 1));
        assert!(c.nodes.iter().all(|n| n.awaiting_count() == 0));
    }

    #[test]
    fn backup_requests_are_forwarded_to_primary() {
        let mut c = Cluster::new(4);
        let now = SimTime::from_secs(1);
        c.request(NodeId(2), b"a", now);
        c.request(NodeId(3), b"b", now);
        c.request(NodeId(1), b"c", now);
        assert!(c.committed.iter().all(|log| log.len() == 1));
        let batch: &Vec<Request> = &c.committed[0][0].1;
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn partial_batch_flushes_on_timer() {
        let mut c = Cluster::new(4);
        let t0 = SimTime::from_secs(1);
        c.request(NodeId(0), b"lonely", t0);
        assert!(c.committed[0].is_empty(), "must wait for the batch timer");
        let wake = c.nodes[0].next_wake().expect("batch timer armed");
        assert_eq!(wake, t0 + PbftConfig::default().batch_timeout);
        c.tick_all(wake);
        assert!(c.committed.iter().all(|log| log.len() == 1));
        assert_eq!(c.committed[0][0].1, vec![b"lonely".to_vec()]);
    }

    #[test]
    fn sequences_commit_in_order() {
        let mut c = Cluster::new(4);
        let now = SimTime::from_secs(1);
        for i in 0..9 {
            c.request(NodeId(0), format!("tx-{i}").as_bytes(), now);
        }
        for log in &c.committed {
            let seqs: Vec<u64> = log.iter().map(|(s, _)| *s).collect();
            assert_eq!(seqs, vec![1, 2, 3]);
        }
    }

    #[test]
    fn duplicate_requests_commit_once() {
        let mut c = Cluster::new(4);
        let now = SimTime::from_secs(1);
        c.request(NodeId(0), b"dup", now);
        c.request(NodeId(0), b"dup", now);
        c.request(NodeId(0), b"x", now);
        c.request(NodeId(0), b"y", now);
        let all: Vec<&[u8]> = c.committed[0]
            .iter()
            .flat_map(|(_, b)| b.iter().map(|r| r.as_slice()))
            .collect();
        assert_eq!(all.iter().filter(|r| **r == b"dup").count(), 1);
    }

    #[test]
    fn primary_crash_triggers_view_change_and_recovery() {
        let mut c = Cluster::new(4);
        let t0 = SimTime::from_secs(1);
        // Primary (node 0) dies; a request lands at a backup.
        c.down[0] = true;
        c.request(NodeId(1), b"orphaned", t0);
        assert!(c.committed.iter().all(|log| log.is_empty()));
        // First timeout: node 1 spreads the request and votes; the other
        // replicas arm their timers. Second timeout: they join, the view
        // change reaches quorum.
        let t1 = t0 + PbftConfig::default().view_timeout + SimDuration::from_millis(1);
        c.tick_all(t1);
        let t2 = t1 + PbftConfig::default().view_timeout + SimDuration::from_millis(1);
        c.tick_all(t2);
        // View changed to 1 (primary = node 1); request re-proposed; it
        // flushes on the new primary's immediate propose.
        for i in 1..4 {
            assert_eq!(c.nodes[i].view(), 1, "replica {i}");
        }
        for i in 1..4 {
            assert_eq!(c.committed[i].len(), 1, "replica {i} committed");
            assert_eq!(c.committed[i][0].1, vec![b"orphaned".to_vec()]);
        }
    }

    #[test]
    fn too_many_crashes_stall_forever() {
        // n = 4 tolerates f = 1; crash 2 and nothing can commit.
        let mut c = Cluster::new(4);
        let t0 = SimTime::from_secs(1);
        c.down[2] = true;
        c.down[3] = true;
        c.request(NodeId(0), b"a", t0);
        c.request(NodeId(0), b"b", t0);
        c.request(NodeId(0), b"c", t0);
        assert!(c.committed.iter().all(|log| log.is_empty()));
        // Even after repeated view-change attempts.
        let mut t = t0;
        for _ in 0..6 {
            t = t + PbftConfig::default().view_timeout * 3;
            c.tick_all(t);
        }
        assert!(c.committed.iter().all(|log| log.is_empty()));
    }

    #[test]
    fn lagging_replica_catches_up_via_sync() {
        let mut c = Cluster::new(4);
        let t0 = SimTime::from_secs(1);
        // Node 3 is crashed while two batches commit.
        c.down[3] = true;
        for i in 0..6 {
            c.request(NodeId(0), format!("tx-{i}").as_bytes(), t0);
        }
        assert_eq!(c.committed[0].len(), 2);
        assert!(c.committed[3].is_empty());
        // Node 3 recovers and asks a peer for state.
        c.down[3] = false;
        let acts = vec![Action::Send(NodeId(0), PbftMsg::SyncRequest { from_seq: 0 })];
        c.dispatch(NodeId(3), acts, t0 + SimDuration::from_secs(1));
        assert_eq!(c.committed[3].len(), 2);
        assert_eq!(c.nodes[3].last_committed(), 2);
        assert_eq!(c.committed[3], c.committed[0]);
    }

    #[test]
    fn resumed_replica_syncs_only_the_gap() {
        let mut c = Cluster::new(4);
        let t0 = SimTime::from_secs(1);
        // Four batches commit everywhere.
        for i in 0..12 {
            c.request(NodeId(0), format!("tx-{i}").as_bytes(), t0);
        }
        assert_eq!(c.committed[0].len(), 4);
        // Node 3 crashes having durably committed only the first 2 batches,
        // then restarts amnesiac above that floor while 2 more commit.
        c.down[3] = true;
        for i in 12..18 {
            c.request(NodeId(0), format!("tx-{i}").as_bytes(), t0);
        }
        assert_eq!(c.committed[0].len(), 6);
        let config = c.nodes[3].config.clone();
        c.nodes[3] = PbftNode::resume_at(NodeId(3), config, 2);
        c.committed[3].clear();
        c.down[3] = false;
        assert_eq!(c.nodes[3].last_committed(), 2);
        let acts = vec![Action::Send(NodeId(0), PbftMsg::SyncRequest { from_seq: 2 })];
        c.dispatch(NodeId(3), acts, t0 + SimDuration::from_secs(1));
        // Only batches 3..=6 were re-fetched; the durable prefix stayed put.
        assert_eq!(c.nodes[3].last_committed(), 6);
        assert_eq!(c.committed[3].len(), 4);
        assert_eq!(c.committed[3], c.committed[0][2..].to_vec());
    }

    #[test]
    fn stale_view_messages_ignored() {
        let config = PbftConfig { n: 4, ..PbftConfig::default() };
        let mut node = PbftNode::new(NodeId(1), config);
        let now = SimTime::from_secs(1);
        // Jump the node to view 2 via quorum of view-change votes.
        for from in [0u32, 2, 3] {
            node.on_message(
                NodeId(from),
                PbftMsg::ViewChange { new_view: 2, last_committed: 0 },
                now,
            );
        }
        assert_eq!(node.view(), 2);
        // A pre-prepare from the view-0 primary is now stale.
        let acts = node.on_message(
            NodeId(0),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: batch_digest(&[b"x".to_vec()]),
                batch: vec![b"x".to_vec()],
            },
            now,
        );
        assert!(acts.is_empty());
        assert_eq!(node.last_committed(), 0);
    }

    #[test]
    fn preprepare_from_non_primary_rejected() {
        let config = PbftConfig { n: 4, ..PbftConfig::default() };
        let mut node = PbftNode::new(NodeId(1), config);
        let acts = node.on_message(
            NodeId(2), // not the view-0 primary
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: batch_digest(&[b"x".to_vec()]),
                batch: vec![b"x".to_vec()],
            },
            SimTime::from_secs(1),
        );
        assert!(acts.is_empty());
    }

    #[test]
    fn mismatched_digest_rejected() {
        let config = PbftConfig { n: 4, ..PbftConfig::default() };
        let mut node = PbftNode::new(NodeId(1), config);
        let acts = node.on_message(
            NodeId(0),
            PbftMsg::PrePrepare {
                view: 0,
                seq: 1,
                digest: Hash256::digest(b"lies"),
                batch: vec![b"x".to_vec()],
            },
            SimTime::from_secs(1),
        );
        assert!(acts.is_empty());
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let small = PbftMsg::Prepare { view: 0, seq: 1, digest: Hash256::ZERO };
        let big = PbftMsg::PrePrepare {
            view: 0,
            seq: 1,
            digest: Hash256::ZERO,
            batch: vec![vec![0u8; 200]; 10],
        };
        assert!(big.byte_size() > small.byte_size() + 2000);
        assert!(small.byte_size() >= 64);
    }

    #[test]
    fn commits_survive_adversarial_delivery_order() {
        use bb_sim::SimRng;
        // Same cluster, but messages are delivered in a randomly shuffled
        // order (a stand-in for arbitrary network reordering). Every replica
        // must still commit the same batches in the same order.
        for seed in 0..8u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let config = PbftConfig { n: 4, batch_size: 2, ..PbftConfig::default() };
            let mut nodes: Vec<PbftNode> =
                (0..4).map(|i| PbftNode::new(NodeId(i), config.clone())).collect();
            let mut committed: Vec<Vec<(u64, Vec<Request>)>> = vec![Vec::new(); 4];
            let now = SimTime::from_secs(1);
            let mut queue: Vec<(NodeId, NodeId, PbftMsg)> = Vec::new();
            let absorb = |committed: &mut Vec<Vec<(u64, Vec<Request>)>>,
                          queue: &mut Vec<(NodeId, NodeId, PbftMsg)>,
                          src: NodeId,
                          acts: Vec<Action>| {
                for a in acts {
                    match a {
                        Action::Send(to, m) => queue.push((src, to, m)),
                        Action::Broadcast(m) => {
                            for to in (0..4).map(NodeId).filter(|&t| t != src) {
                                queue.push((src, to, m.clone()));
                            }
                        }
                        Action::CommitBatch { seq, batch } => {
                            committed[src.index()].push((seq, batch));
                        }
                        Action::InstallCheckpoint { .. } => {}
                    }
                }
            };
            for i in 0..6 {
                let acts = nodes[(i % 4) as usize]
                    .on_request(format!("tx-{i}").into_bytes(), now);
                absorb(&mut committed, &mut queue, NodeId(i % 4), acts);
            }
            while !queue.is_empty() {
                let pick = rng.below(queue.len() as u64) as usize;
                let (src, to, msg) = queue.swap_remove(pick);
                let acts = nodes[to.index()].on_message(src, msg, now);
                absorb(&mut committed, &mut queue, to, acts);
            }
            // All replicas committed identical sequences.
            let reference = &committed[0];
            assert!(!reference.is_empty(), "seed {seed}: nothing committed");
            for i in 1..4 {
                assert_eq!(&committed[i], reference, "seed {seed}, replica {i}");
            }
        }
    }

    #[test]
    fn timeout_retransmission_is_bounded_to_one_batch() {
        // A backup sitting on a large backlog must not re-broadcast the
        // whole backlog on a liveness timeout — one batch worth, plus the
        // view-change vote.
        let config = PbftConfig { n: 4, batch_size: 3, ..PbftConfig::default() };
        let mut node = PbftNode::new(NodeId(1), config.clone());
        let t0 = SimTime::from_secs(1);
        for i in 0..50 {
            node.on_request(format!("tx-{i}").into_bytes(), t0);
        }
        assert_eq!(node.awaiting_count(), 50);
        let acts = node.on_tick(t0 + config.view_timeout + SimDuration::from_millis(1));
        let forwards = acts
            .iter()
            .filter(|a| matches!(a, Action::Broadcast(PbftMsg::Forward(_))))
            .count();
        assert_eq!(forwards, config.batch_size, "retransmission window");
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::Broadcast(PbftMsg::ViewChange { .. }))));
    }

    #[test]
    fn retransmission_order_is_deterministic() {
        // Two replicas fed the same requests in the same order must emit
        // identical retransmission actions — the ordered `awaiting` map is
        // what keeps whole-simulation runs byte-identical across processes.
        let config = PbftConfig { n: 4, batch_size: 8, ..PbftConfig::default() };
        let t0 = SimTime::from_secs(1);
        let mk = || {
            let mut n = PbftNode::new(NodeId(1), config.clone());
            for i in 0..30 {
                n.on_request(format!("tx-{i}").into_bytes(), t0);
            }
            n.on_tick(t0 + config.view_timeout + SimDuration::from_millis(1))
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn deep_lag_catches_up_through_sync_windows() {
        // 75 requests at batch_size 3 = 25 committed batches — more than
        // one SYNC_WINDOW. The laggard must request chunk after chunk until
        // it has the full log.
        assert!(25 > SYNC_WINDOW);
        let mut c = Cluster::new(4);
        let t0 = SimTime::from_secs(1);
        c.down[3] = true;
        for i in 0..75 {
            c.request(NodeId(0), format!("tx-{i}").as_bytes(), t0);
        }
        assert_eq!(c.committed[0].len(), 25);
        assert!(c.committed[3].is_empty());
        c.down[3] = false;
        let acts = vec![Action::Send(NodeId(0), PbftMsg::SyncRequest { from_seq: 0 })];
        c.dispatch(NodeId(3), acts, t0 + SimDuration::from_secs(1));
        assert_eq!(c.nodes[3].last_committed(), 25);
        assert_eq!(c.committed[3], c.committed[0]);
    }

    #[test]
    fn sync_crosses_checkpoint_horizon() {
        // Horizon 5 with 25 committed batches: the live replicas hold only
        // seqs 21..=25 plus a checkpoint digest for 1..=20. A recovering
        // laggard asking for history from 0 must jump via the checkpoint,
        // then batch-sync the retained window.
        let config = PbftConfig { n: 4, batch_size: 3, checkpoint_horizon: 5, ..PbftConfig::default() };
        let mut c = Cluster {
            nodes: (0..4).map(|i| PbftNode::new(NodeId(i), config.clone())).collect(),
            committed: vec![Vec::new(); 4],
            down: vec![false; 4],
        };
        let t0 = SimTime::from_secs(1);
        c.down[3] = true;
        for i in 0..75 {
            c.request(NodeId(0), format!("tx-{i}").as_bytes(), t0);
        }
        assert_eq!(c.committed[0].len(), 25);
        assert_eq!(c.nodes[0].committed_log_len(), 5, "log bounded by horizon");
        let (ckpt_seq, ckpt_digest) = c.nodes[0].checkpoint();
        assert_eq!(ckpt_seq, 20);
        assert_ne!(ckpt_digest, Hash256::ZERO);
        // Every live replica folded the same history into the same digest.
        for i in 1..3 {
            assert_eq!(c.nodes[i].checkpoint(), (ckpt_seq, ckpt_digest), "replica {i}");
        }
        // Recovery: checkpoint jump, then sync of the retained window.
        c.down[3] = false;
        let acts = vec![Action::Send(NodeId(0), PbftMsg::SyncRequest { from_seq: 0 })];
        c.dispatch(NodeId(3), acts, t0 + SimDuration::from_secs(1));
        assert_eq!(c.nodes[3].last_committed(), 25);
        assert_eq!(c.nodes[3].checkpoint(), (ckpt_seq, ckpt_digest));
        // The laggard delivered exactly the batches above the checkpoint,
        // matching the live replicas' tail.
        assert_eq!(c.committed[3], c.committed[0][20..].to_vec());
    }

    #[test]
    fn checkpoint_digest_is_order_sensitive() {
        // Two nodes GC'ing different histories must end at different
        // digests — the chain binds sequence numbers and batch contents.
        let config = PbftConfig { n: 4, batch_size: 1, checkpoint_horizon: 0, ..PbftConfig::default() };
        let run = |batches: &[&[u8]]| {
            let mut node = PbftNode::new(NodeId(1), config.clone());
            let now = SimTime::from_secs(1);
            for (k, body) in batches.iter().enumerate() {
                let seq = k as u64 + 1;
                let batch = vec![body.to_vec()];
                let digest = batch_digest(&batch);
                node.on_message(
                    NodeId(0),
                    PbftMsg::PrePrepare { view: 0, seq, digest, batch },
                    now,
                );
                node.on_message(NodeId(2), PbftMsg::Prepare { view: 0, seq, digest }, now);
                for from in [0u32, 2] {
                    node.on_message(NodeId(from), PbftMsg::Commit { view: 0, seq, digest }, now);
                }
            }
            node.checkpoint()
        };
        let (s1, d1) = run(&[b"a", b"b"]);
        let (s2, d2) = run(&[b"b", b"a"]);
        assert_eq!(s1, 2);
        assert_eq!(s2, 2);
        assert_ne!(d1, d2);
    }

    #[test]
    fn sixteen_node_cluster_commits() {
        let mut c = Cluster::new(16);
        let now = SimTime::from_secs(1);
        for i in 0..3 {
            c.request(NodeId(i % 16), format!("tx-{i}").as_bytes(), now);
        }
        assert!(c.committed.iter().all(|log| log.len() == 1));
    }
}
