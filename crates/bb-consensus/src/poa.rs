//! Proof-of-Authority: Parity's Aura-style authority round.
//!
//! "A set of authorities are pre-determined and each authority is assigned a
//! fixed time slot within which it can generate blocks" (Section 3.1.1).
//! Time is divided into steps of `step_duration` (the paper set
//! `stepDuration = 1`); step `s` belongs to authority `s mod n`.
//!
//! Crash behaviour: the paper observed that "failing 4 nodes means the
//! remaining nodes are given more time to generate more blocks, therefore
//! the overall throughput is unaffected" (Section 4.1.3). We model that with
//! [`PoaSchedule::authority_for_step_live`], which rotates steps over the
//! currently live authorities — the steady-state behaviour after Aura's
//! skip-and-takeover settles.

use bb_sim::{SimDuration, SimTime};
use bb_types::NodeId;

/// The fixed authority rotation for one chain.
#[derive(Debug, Clone)]
pub struct PoaSchedule {
    authorities: Vec<NodeId>,
    step_duration: SimDuration,
}

impl PoaSchedule {
    /// Build a schedule. Panics on an empty authority set or zero step.
    pub fn new(authorities: Vec<NodeId>, step_duration: SimDuration) -> Self {
        assert!(!authorities.is_empty(), "need at least one authority");
        assert!(step_duration > SimDuration::ZERO, "step duration must be positive");
        PoaSchedule { authorities, step_duration }
    }

    /// The step active at time `t` (step 0 covers `[0, step)`).
    pub fn step_at(&self, t: SimTime) -> u64 {
        t.as_micros() / self.step_duration.as_micros()
    }

    /// When `step` begins.
    pub fn step_start(&self, step: u64) -> SimTime {
        SimTime(step * self.step_duration.as_micros())
    }

    /// The authority owning `step` under the full rotation.
    pub fn authority_for_step(&self, step: u64) -> NodeId {
        self.authorities[(step % self.authorities.len() as u64) as usize]
    }

    /// The authority owning `step` when only `live` authorities participate
    /// (crashed slots are covered by the survivors). Returns `None` if no
    /// authority is live.
    pub fn authority_for_step_live(&self, step: u64, live: &[bool]) -> Option<NodeId> {
        let alive: Vec<NodeId> = self
            .authorities
            .iter()
            .copied()
            .filter(|a| live.get(a.index()).copied().unwrap_or(false))
            .collect();
        if alive.is_empty() {
            return None;
        }
        Some(alive[(step % alive.len() as u64) as usize])
    }

    /// The configured step duration.
    pub fn step_duration(&self) -> SimDuration {
        self.step_duration
    }

    /// The authority set.
    pub fn authorities(&self) -> &[NodeId] {
        &self.authorities
    }

    /// The start of the first step at or after `t`.
    pub fn next_step_boundary(&self, t: SimTime) -> SimTime {
        let step_us = self.step_duration.as_micros();
        let rem = t.as_micros() % step_us;
        if rem == 0 {
            t
        } else {
            SimTime(t.as_micros() + step_us - rem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: u32) -> PoaSchedule {
        PoaSchedule::new((0..n).map(NodeId).collect(), SimDuration::from_secs(1))
    }

    #[test]
    fn steps_partition_time() {
        let s = sched(4);
        assert_eq!(s.step_at(SimTime::ZERO), 0);
        assert_eq!(s.step_at(SimTime::from_millis(999)), 0);
        assert_eq!(s.step_at(SimTime::from_secs(1)), 1);
        assert_eq!(s.step_at(SimTime::from_millis(7500)), 7);
        assert_eq!(s.step_start(7), SimTime::from_secs(7));
    }

    #[test]
    fn rotation_is_round_robin() {
        let s = sched(3);
        let owners: Vec<u32> = (0..6).map(|i| s.authority_for_step(i).0).collect();
        assert_eq!(owners, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn live_rotation_skips_dead_authorities() {
        let s = sched(4);
        let live = vec![true, false, true, false];
        let owners: Vec<u32> = (0..4)
            .map(|i| s.authority_for_step_live(i, &live).unwrap().0)
            .collect();
        assert_eq!(owners, vec![0, 2, 0, 2]);
        // All dead: no producer.
        assert_eq!(s.authority_for_step_live(0, &[false; 4]), None);
        // Full liveness matches the plain rotation.
        for step in 0..8 {
            assert_eq!(
                s.authority_for_step_live(step, &[true; 4]),
                Some(s.authority_for_step(step))
            );
        }
    }

    #[test]
    fn next_boundary_rounds_up() {
        let s = sched(2);
        assert_eq!(s.next_step_boundary(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(s.next_step_boundary(SimTime::from_millis(1)), SimTime::from_secs(1));
        assert_eq!(s.next_step_boundary(SimTime::from_secs(5)), SimTime::from_secs(5));
        assert_eq!(s.next_step_boundary(SimTime::from_millis(5999)), SimTime::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "at least one authority")]
    fn empty_authorities_panics() {
        PoaSchedule::new(vec![], SimDuration::from_secs(1));
    }
}
