//! Consensus protocols for BLOCKBENCH-RS.
//!
//! Section 3.1.1 of the paper maps the three platforms onto a spectrum of
//! Byzantine-fault-tolerant protocols; this crate implements each as a pure
//! state machine the platform crates wire to the simulated network:
//!
//! - [`pow`]: proof-of-work — the analytical exponential-race model of
//!   mining, a heaviest-chain block tree with orphan handling (GHOST-style
//!   fork choice), and the super-linear difficulty-vs-network-size rule the
//!   paper's authors applied to keep large Ethereum networks from
//!   diverging;
//! - [`poa`]: Parity's Aura-style proof-of-authority round — pre-assigned
//!   time slots, one authority per step;
//! - [`pbft`]: Castro–Liskov PBFT — pre-prepare/prepare/commit with
//!   batching (Fabric's `batchSize = 500`), f = ⌊(n−1)/3⌋ quorums, and view
//!   changes. The *sans-IO* design (methods return [`pbft::Action`]s) keeps
//!   it independently testable; the bounded message channel whose overflow
//!   kills Fabric past 16 nodes lives in the platform layer.

pub mod pbft;
pub mod poa;
pub mod pow;

pub use pbft::{PbftConfig, PbftMsg, PbftNode};
pub use poa::PoaSchedule;
pub use pow::{BlockTree, InsertOutcome, PowParams};
