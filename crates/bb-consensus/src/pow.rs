//! Proof-of-work: mining-race timing and heaviest-chain fork choice.
//!
//! **Timing.** Finding a PoW block is memoryless, so a miner holding share
//! `s` of the network hashpower with network-wide mean block interval `I`
//! finds its next block after `Exp(mean = I/s)` — the standard analytical
//! model. The platform draws these races with [`bb_sim::SimRng`].
//!
//! **Difficulty.** The paper's authors "manually tuned the difficulty
//! variable... to ensure that miners do not diverge in large networks" and
//! observed that "the difficulty level increases at higher rate than the
//! number of nodes" (Section 4.1.2) — [`PowParams::network_interval`]
//! encodes that super-linear rule, and is one cause of Ethereum's
//! throughput degradation in Figures 7/8.
//!
//! **Fork choice.** [`BlockTree`] tracks every block ever seen (main chain
//! *and* forks — the Figure 10 security metric is their ratio), resolves the
//! head by cumulative work with first-seen tie-breaking, and buffers orphans
//! until their parents arrive.

use bb_crypto::Hash256;
use bb_sim::SimDuration;
use std::collections::HashMap;

/// Network-level PoW parameters.
#[derive(Debug, Clone)]
pub struct PowParams {
    /// Mean network-wide block interval at the reference network size.
    pub base_interval: SimDuration,
    /// Network size the base interval is tuned for.
    pub reference_nodes: u32,
    /// Super-linear exponent: interval scales with `(n/ref)^exponent` above
    /// the reference size.
    pub size_exponent: f64,
    /// Blocks from the tip before a block counts as confirmed.
    pub confirm_depth: u64,
}

impl Default for PowParams {
    fn default() -> Self {
        // The paper's private testnet: difficulty ≈ 2.5 s/block at 8 nodes,
        // confirmationLength ≈ 5 s ≈ 2 blocks.
        PowParams {
            base_interval: SimDuration::from_millis(2500),
            reference_nodes: 8,
            size_exponent: 1.35,
            confirm_depth: 2,
        }
    }
}

impl PowParams {
    /// Mean network-wide block interval for `n` mining nodes.
    pub fn network_interval(&self, n: u32) -> SimDuration {
        let n = n.max(1);
        if n <= self.reference_nodes {
            return self.base_interval;
        }
        let scale = (n as f64 / self.reference_nodes as f64).powf(self.size_exponent);
        SimDuration::from_secs_f64(self.base_interval.as_secs_f64() * scale)
    }

    /// Mean interval between *this miner's* blocks, given equal hashpower
    /// across `n` miners.
    pub fn miner_interval(&self, n: u32) -> SimDuration {
        let net = self.network_interval(n);
        net.saturating_mul(n.max(1) as u64)
    }
}

/// Outcome of inserting a block into the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The block extended the best chain; it is the new head.
    NewHead {
        /// True when the head moved to a different branch (blocks were
        /// un-done) rather than simply extending.
        reorged: bool,
    },
    /// Accepted, but a heavier branch remains the head (a fork block —
    /// counted by the security metric).
    SideChain,
    /// Parent unknown; buffered until it arrives.
    Orphaned,
    /// Already known; ignored.
    Duplicate,
}

#[derive(Debug, Clone)]
struct Entry {
    parent: Hash256,
    height: u64,
    total_work: u128,
}

/// A block tree with heaviest-chain fork choice.
#[derive(Debug, Clone)]
pub struct BlockTree {
    blocks: HashMap<Hash256, Entry>,
    /// Orphans waiting for `key` to arrive: parent → (id, work).
    orphans: HashMap<Hash256, Vec<(Hash256, u64)>>,
    head: Hash256,
    genesis: Hash256,
}

impl BlockTree {
    /// Tree rooted at `genesis` (height 0, zero work).
    pub fn new(genesis: Hash256) -> Self {
        let mut blocks = HashMap::new();
        blocks.insert(genesis, Entry { parent: Hash256::ZERO, height: 0, total_work: 0 });
        BlockTree { blocks, orphans: HashMap::new(), head: genesis, genesis }
    }

    /// The current best block.
    pub fn head(&self) -> Hash256 {
        self.head
    }

    /// The genesis block id.
    pub fn genesis(&self) -> Hash256 {
        self.genesis
    }

    /// Height of the current head.
    pub fn head_height(&self) -> u64 {
        self.blocks[&self.head].height
    }

    /// Height of an arbitrary known block.
    pub fn height_of(&self, id: &Hash256) -> Option<u64> {
        self.blocks.get(id).map(|e| e.height)
    }

    /// Parent of a known block.
    pub fn parent_of(&self, id: &Hash256) -> Option<Hash256> {
        self.blocks.get(id).map(|e| e.parent)
    }

    /// Is the block known (connected, not orphaned)?
    pub fn contains(&self, id: &Hash256) -> bool {
        self.blocks.contains_key(id)
    }

    /// Insert a block. `work` is its difficulty contribution.
    pub fn insert(&mut self, id: Hash256, parent: Hash256, work: u64) -> InsertOutcome {
        if self.blocks.contains_key(&id) {
            return InsertOutcome::Duplicate;
        }
        let Some(parent_entry) = self.blocks.get(&parent) else {
            self.orphans.entry(parent).or_default().push((id, work));
            return InsertOutcome::Orphaned;
        };
        let entry = Entry {
            parent,
            height: parent_entry.height + 1,
            total_work: parent_entry.total_work + work as u128,
        };
        let old_head = self.head;
        let heavier = entry.total_work > self.blocks[&self.head].total_work;
        self.blocks.insert(id, entry);
        let mut outcome = if heavier {
            let reorged = parent != old_head;
            self.head = id;
            InsertOutcome::NewHead { reorged }
        } else {
            InsertOutcome::SideChain
        };
        // Connect any orphans waiting on this block (recursively, via the
        // queue of newly connected ids).
        let mut queue = vec![id];
        while let Some(connected) = queue.pop() {
            let Some(waiting) = self.orphans.remove(&connected) else {
                continue;
            };
            for (child, child_work) in waiting {
                match self.insert(child, connected, child_work) {
                    InsertOutcome::NewHead { reorged } => {
                        // A connected orphan subtree may move the head.
                        if let InsertOutcome::SideChain = outcome {
                            outcome = InsertOutcome::NewHead { reorged };
                        }
                        queue.push(child);
                        let _ = reorged;
                    }
                    _ => queue.push(child),
                }
            }
        }
        outcome
    }

    /// Walk the main chain from head back to genesis (inclusive), newest
    /// first.
    pub fn main_chain(&self) -> Vec<Hash256> {
        let mut out = Vec::with_capacity(self.head_height() as usize + 1);
        let mut at = self.head;
        loop {
            out.push(at);
            if at == self.genesis {
                break;
            }
            at = self.blocks[&at].parent;
        }
        out
    }

    /// The main-chain block at `height`, if the chain is that tall.
    pub fn main_chain_at(&self, height: u64) -> Option<Hash256> {
        let head_h = self.head_height();
        if height > head_h {
            return None;
        }
        let mut at = self.head;
        for _ in 0..(head_h - height) {
            at = self.blocks[&at].parent;
        }
        Some(at)
    }

    /// Is `id` on the main chain?
    pub fn on_main_chain(&self, id: &Hash256) -> bool {
        match self.blocks.get(id) {
            Some(e) => self.main_chain_at(e.height) == Some(*id),
            None => false,
        }
    }

    /// Height below which blocks are confirmed, per `confirm_depth`.
    /// Genesis never counts as a confirmable user block.
    pub fn confirmed_height(&self, confirm_depth: u64) -> u64 {
        self.head_height().saturating_sub(confirm_depth)
    }

    /// Every connected block excluding genesis — main chain plus forks. The
    /// Figure 10 security metric is `main_chain_len / total_blocks`.
    pub fn total_blocks(&self) -> u64 {
        self.blocks.len() as u64 - 1
    }

    /// Main-chain length excluding genesis.
    pub fn main_chain_len(&self) -> u64 {
        self.head_height()
    }

    /// Blocks accepted but not on the main chain (the fork/stale count).
    pub fn fork_blocks(&self) -> u64 {
        self.total_blocks() - self.main_chain_len()
    }

    /// Orphans still waiting for parents.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(s: &str) -> Hash256 {
        Hash256::digest(s.as_bytes())
    }

    #[test]
    fn difficulty_grows_superlinearly() {
        let p = PowParams::default();
        assert_eq!(p.network_interval(8), p.base_interval);
        assert_eq!(p.network_interval(4), p.base_interval);
        let i16 = p.network_interval(16).as_secs_f64();
        let i32n = p.network_interval(32).as_secs_f64();
        let base = p.base_interval.as_secs_f64();
        assert!(i16 > 2.0 * base, "16 nodes: {i16}");
        assert!(i32n > 2.0 * i16, "32 nodes: {i32n}");
    }

    #[test]
    fn miner_interval_scales_with_population() {
        let p = PowParams::default();
        let one = p.miner_interval(8).as_secs_f64();
        assert!((one - 8.0 * 2.5).abs() < 0.01);
    }

    #[test]
    fn linear_chain_advances_head() {
        let mut t = BlockTree::new(h("g"));
        assert_eq!(t.insert(h("a"), h("g"), 10), InsertOutcome::NewHead { reorged: false });
        assert_eq!(t.insert(h("b"), h("a"), 10), InsertOutcome::NewHead { reorged: false });
        assert_eq!(t.head(), h("b"));
        assert_eq!(t.head_height(), 2);
        assert_eq!(t.main_chain(), vec![h("b"), h("a"), h("g")]);
        assert_eq!(t.fork_blocks(), 0);
    }

    #[test]
    fn fork_and_reorg() {
        let mut t = BlockTree::new(h("g"));
        t.insert(h("a1"), h("g"), 10);
        // Competing block at same height: side chain (equal work doesn't win).
        assert_eq!(t.insert(h("a2"), h("g"), 10), InsertOutcome::SideChain);
        assert_eq!(t.head(), h("a1"));
        // Extending the side chain outweighs: reorg.
        assert_eq!(t.insert(h("b2"), h("a2"), 10), InsertOutcome::NewHead { reorged: true });
        assert_eq!(t.head(), h("b2"));
        assert!(t.on_main_chain(&h("a2")));
        assert!(!t.on_main_chain(&h("a1")));
        assert_eq!(t.fork_blocks(), 1);
        assert_eq!(t.total_blocks(), 3);
    }

    #[test]
    fn heavier_single_block_beats_longer_light_chain() {
        let mut t = BlockTree::new(h("g"));
        t.insert(h("l1"), h("g"), 5);
        t.insert(h("l2"), h("l1"), 5);
        assert_eq!(t.insert(h("heavy"), h("g"), 100), InsertOutcome::NewHead { reorged: true });
        assert_eq!(t.head(), h("heavy"));
        assert_eq!(t.head_height(), 1);
    }

    #[test]
    fn orphans_connect_when_parent_arrives() {
        let mut t = BlockTree::new(h("g"));
        assert_eq!(t.insert(h("c"), h("b"), 10), InsertOutcome::Orphaned);
        assert_eq!(t.insert(h("b"), h("a"), 10), InsertOutcome::Orphaned);
        assert_eq!(t.orphan_count(), 2);
        // The missing link arrives; the whole subtree connects and wins.
        let outcome = t.insert(h("a"), h("g"), 10);
        assert!(matches!(outcome, InsertOutcome::NewHead { .. }), "{outcome:?}");
        assert_eq!(t.head(), h("c"));
        assert_eq!(t.head_height(), 3);
        assert_eq!(t.orphan_count(), 0);
    }

    #[test]
    fn duplicates_ignored() {
        let mut t = BlockTree::new(h("g"));
        t.insert(h("a"), h("g"), 10);
        assert_eq!(t.insert(h("a"), h("g"), 10), InsertOutcome::Duplicate);
        assert_eq!(t.total_blocks(), 1);
    }

    #[test]
    fn confirmed_height_lags_head() {
        let mut t = BlockTree::new(h("g"));
        let ids: Vec<Hash256> = (0..5).map(|i| h(&format!("b{i}"))).collect();
        let mut parent = h("g");
        for id in &ids {
            t.insert(*id, parent, 10);
            parent = *id;
        }
        assert_eq!(t.confirmed_height(2), 3);
        assert_eq!(t.confirmed_height(10), 0);
        assert_eq!(t.main_chain_at(3), Some(h("b2")));
        assert_eq!(t.main_chain_at(99), None);
    }

    #[test]
    fn partition_fork_metric() {
        // Two isolated halves each build 3 blocks on the same parent; after
        // healing one branch wins and the other counts as forked.
        let mut t = BlockTree::new(h("g"));
        let mut p1 = h("g");
        for i in 0..3 {
            let id = h(&format!("left{i}"));
            t.insert(id, p1, 10);
            p1 = id;
        }
        let mut p2 = h("g");
        for i in 0..4 {
            let id = h(&format!("right{i}"));
            t.insert(id, p2, 10);
            p2 = id;
        }
        assert_eq!(t.head(), h("right3"));
        assert_eq!(t.total_blocks(), 7);
        assert_eq!(t.main_chain_len(), 4);
        assert_eq!(t.fork_blocks(), 3);
    }
}
