//! The chaincode runtime: Fabric's execution + data layer.
//!
//! Chaincodes are native Rust (the Docker-image stand-in, Section 3.1.3),
//! each confined to its own key namespace inside one Bucket-Merkle tree
//! over an LSM store (the RocksDB stand-in). Writes buffer during an
//! invocation and flush only on success, so a failed chaincode leaves no
//! trace.

use bb_merkle::BucketTree;
use bb_sim::MemMeter;
use bb_storage::{KvStore, LsmConfig, LsmStore, Vfs};
use bb_types::{Address, Transaction};
use blockbench::contract::{decode_call, Chaincode, ChaincodeContext, ChaincodeFactory};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// VFS path prefix of a peer's LSM store (`{prefix}/wal`, SSTables).
pub const STORE_PREFIX: &str = "lsm";

fn store_config() -> LsmConfig {
    LsmConfig {
        // Chain workloads write heavily and rarely delete: flush less
        // often and let a deeper L0 stack accumulate before the leveled
        // compactor starts folding runs down.
        memtable_flush_bytes: 4 << 20,
        max_tables: 48,
        ..LsmConfig::default()
    }
}

/// Outcome of a chaincode invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeResult {
    /// Did it succeed?
    pub success: bool,
    /// Native work units charged.
    pub units: u64,
    /// State operations performed (get/put/delete).
    pub state_ops: u64,
    /// Peak transient allocation during the call.
    pub peak_alloc: u64,
    /// Return data.
    pub output: Vec<u8>,
    /// Failure cause.
    pub error: Option<String>,
}

/// One peer's world state plus its installed chaincodes.
pub struct FabricState {
    tree: BucketTree<LsmStore>,
    chaincodes: HashMap<Address, Box<dyn Chaincode>>,
    mem: MemMeter,
}

fn namespaced(addr: &Address, key: &[u8]) -> Vec<u8> {
    let mut k = addr.0.to_vec();
    k.push(b':');
    k.extend_from_slice(key);
    k
}

impl FabricState {
    /// Fresh state over a private LSM store.
    pub fn new(buckets: usize, mem_cap: u64) -> FabricState {
        FabricState {
            tree: BucketTree::new(LsmStore::new_private(store_config()), buckets),
            chaincodes: HashMap::new(),
            mem: MemMeter::new(mem_cap),
        }
    }

    /// Reopen a peer's state from its durable filesystem after a crash
    /// (the restart path). Replays the WAL — truncating any torn tail —
    /// and recomputes the Bucket-Merkle digests from the surviving `s:`
    /// entries, so the returned state is exactly the durable prefix.
    /// Chaincodes are volatile; the caller reinstalls them.
    pub fn reopen(
        vfs: Arc<Mutex<Vfs>>,
        buckets: usize,
        mem_cap: u64,
    ) -> Result<FabricState, bb_storage::KvError> {
        let store = LsmStore::open(vfs, STORE_PREFIX, store_config())?;
        Ok(FabricState {
            tree: BucketTree::rebuild(store, buckets)?,
            chaincodes: HashMap::new(),
            mem: MemMeter::new(mem_cap),
        })
    }

    /// Shared handle to the filesystem under the LSM store — this is the
    /// only thing a crash preserves.
    pub fn vfs(&self) -> Arc<Mutex<Vfs>> {
        self.tree.store().vfs()
    }

    /// Raw `(key, value)` pairs under `prefix` in the backing store
    /// (durable block metadata lives outside the `s:` state namespace).
    pub fn scan_meta(
        &mut self,
        prefix: &[u8],
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>, bb_storage::KvError> {
        self.tree.store_mut().scan_prefix(prefix)
    }

    /// Pin a consistent snapshot of the backing store for chunked state
    /// sync. The pin freezes the table set at a block boundary (commits
    /// are atomic batches), so every chunk of the session reads the same
    /// state; compaction keeps running and defers file deletion until
    /// [`Self::snapshot_close`].
    pub fn snapshot_open(&mut self) -> u64 {
        self.tree.store_mut().snapshot_open()
    }

    /// One bounded chunk of pinned snapshot `snap`: live `(key, value)`
    /// pairs strictly after `after`, up to `max_bytes` of payload.
    #[allow(clippy::type_complexity)]
    pub fn snapshot_chunk(
        &mut self,
        snap: u64,
        after: Option<&[u8]>,
        max_bytes: usize,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, bool), bb_storage::KvError> {
        self.tree.store_mut().snapshot_chunk(snap, after, max_bytes)
    }

    /// Release a pinned snapshot (reclaims any deferred file deletions).
    pub fn snapshot_close(&mut self, snap: u64) {
        self.tree.store_mut().snapshot_close(snap)
    }

    /// Apply raw transferred `(key, value)` entries straight to the
    /// backing store (the snapshot-sync receive path). Bucket digests are
    /// not maintained — the receiver rebuilds them once via
    /// [`Self::rebuild_keeping_chaincodes`] when the transfer completes.
    pub fn apply_snapshot_entries(
        &mut self,
        entries: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(), bb_storage::KvError> {
        let mut batch = bb_storage::WriteBatch::new();
        for (k, v) in entries {
            batch.put(k, v);
        }
        self.tree.store_mut().apply_batch(batch)
    }

    /// Reopen this state's own store and recompute the bucket digests from
    /// it, carrying the installed chaincodes over — the final step of a
    /// snapshot sync, after [`Self::apply_snapshot_entries`] has streamed
    /// the full key space in.
    pub fn rebuild_keeping_chaincodes(
        self,
        buckets: usize,
        mem_cap: u64,
    ) -> Result<FabricState, bb_storage::KvError> {
        let vfs = self.vfs();
        let FabricState { tree, chaincodes, mem: _ } = self;
        drop(tree); // release the old store before reopening its files
        let store = LsmStore::open(vfs, STORE_PREFIX, store_config())?;
        Ok(FabricState {
            tree: BucketTree::rebuild(store, buckets)?,
            chaincodes,
            mem: MemMeter::new(mem_cap),
        })
    }

    /// Install (deploy) a chaincode at `addr`.
    pub fn install(&mut self, addr: Address, factory: ChaincodeFactory) {
        self.chaincodes.insert(addr, factory());
    }

    /// Is a chaincode installed at `addr`?
    pub fn has_chaincode(&self, addr: &Address) -> bool {
        self.chaincodes.contains_key(addr)
    }

    /// State-tree root (goes into block headers).
    pub fn root(&self) -> bb_crypto::Hash256 {
        self.tree.root()
    }

    /// Storage stats of the backing LSM store.
    pub fn store_stats(&self) -> bb_storage::StorageStats {
        self.tree.store().stats()
    }

    /// Seal a block: flush the bucket tree's pending values to the LSM
    /// store as one atomic write batch.
    pub fn commit_block(&mut self) -> Result<(), bb_storage::KvError> {
        self.tree.commit()
    }

    /// [`Self::commit_block`] plus raw metadata records riding the same
    /// atomic batch, so a crash can never separate a block's state flush
    /// from its chain metadata. Keys must live outside the `s:` state
    /// namespace (they bypass the bucket digests).
    pub fn commit_block_with_meta(
        &mut self,
        extras: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    ) -> Result<(), bb_storage::KvError> {
        self.tree.commit_with_extras(extras)
    }

    /// `(values_flushed, values_superseded)` across this state's lifetime.
    pub fn flush_stats(&self) -> (u64, u64) {
        (self.tree.values_flushed(), self.tree.values_superseded())
    }

    /// Peak chaincode allocation observed.
    pub fn mem_peak(&self) -> u64 {
        self.mem.peak()
    }

    /// Read a raw namespaced state value (tests, analytics).
    pub fn get_state(
        &mut self,
        addr: &Address,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, bb_storage::KvError> {
        self.tree.get(&namespaced(addr, key))
    }

    /// Execute a transaction's chaincode invocation. `commit` controls
    /// whether buffered writes flush (false = read-only query path).
    pub fn invoke(&mut self, tx: &Transaction, height: u64, commit: bool) -> InvokeResult {
        let (result, writes, _reads) = self.execute_call(tx, height);
        if !result.success || !commit {
            return result;
        }
        match self.apply_writes(&writes) {
            Ok(()) => result,
            Err(e) => InvokeResult {
                success: false,
                units: result.units,
                state_ops: result.state_ops,
                peak_alloc: result.peak_alloc,
                output: Vec::new(),
                error: Some(e.to_string()),
            },
        }
    }

    /// Speculatively execute a transaction against the *current* (pre-block)
    /// state: nothing flushes, and the namespaced keys the chaincode read
    /// from shared state come back alongside its buffered writes so an
    /// optimistic block executor can detect conflicts and commit winners.
    pub fn speculate_invoke(&mut self, tx: &Transaction, height: u64) -> SpecInvoke {
        let (result, writes, reads) = self.execute_call(tx, height);
        SpecInvoke { result, reads, writes }
    }

    /// Apply a set of buffered writes (an optimistic winner's effects, in
    /// its own key order) to the bucket tree.
    pub fn apply_writes(
        &mut self,
        writes: &[(Vec<u8>, Option<Vec<u8>>)],
    ) -> Result<(), bb_storage::KvError> {
        for (key, value) in writes {
            match value {
                Some(v) => self.tree.put(key, v)?,
                None => self.tree.delete(key)?,
            }
        }
        Ok(())
    }

    /// Run the chaincode call itself — shared by the serial/query path
    /// ([`Self::invoke`]) and speculation ([`Self::speculate_invoke`]), so
    /// the two can never drift. Buffered writes are returned, not applied.
    fn execute_call(
        &mut self,
        tx: &Transaction,
        height: u64,
    ) -> (InvokeResult, Vec<(Vec<u8>, Option<Vec<u8>>)>, Vec<Vec<u8>>) {
        let fail = |err: &str| InvokeResult {
            success: false,
            units: 1,
            state_ops: 0,
            peak_alloc: 0,
            output: Vec::new(),
            error: Some(err.into()),
        };
        let Some((method, args)) = decode_call(&tx.payload) else {
            return (fail("empty payload"), Vec::new(), Vec::new());
        };
        let Some(chaincode) = self.chaincodes.get_mut(&tx.to) else {
            return (fail("no chaincode at target"), Vec::new(), Vec::new());
        };
        let mut ctx = FabricContext {
            tree: &mut self.tree,
            mem: &mut self.mem,
            addr: tx.to,
            writes: BTreeMap::new(),
            reads: BTreeSet::new(),
            caller: tx.from.0,
            height,
            units: 2, // unmarshal + dispatch
            state_ops: 0,
            alloc_live: 0,
            peak_alloc: 0,
            storage_error: None,
        };
        let result = chaincode.invoke(&mut ctx, method, args);
        let units = ctx.units;
        let state_ops = ctx.state_ops;
        let peak_alloc = ctx.peak_alloc;
        let writes = std::mem::take(&mut ctx.writes);
        let reads = std::mem::take(&mut ctx.reads);
        // Free anything the chaincode leaked.
        let leaked = ctx.alloc_live;
        let storage_error = ctx.storage_error.take();
        drop(ctx);
        self.mem.free(leaked);
        let reads: Vec<Vec<u8>> = reads.into_iter().collect();
        if let Some(e) = storage_error {
            return (
                InvokeResult {
                    success: false,
                    units,
                    state_ops,
                    peak_alloc,
                    output: Vec::new(),
                    error: Some(e),
                },
                Vec::new(),
                reads,
            );
        }
        match result {
            Ok(output) => (
                InvokeResult { success: true, units, state_ops, peak_alloc, output, error: None },
                writes.into_iter().collect(),
                reads,
            ),
            Err(e) => (
                InvokeResult {
                    success: false,
                    units,
                    state_ops,
                    peak_alloc,
                    output: Vec::new(),
                    error: Some(e),
                },
                Vec::new(),
                reads,
            ),
        }
    }
}

/// A speculated chaincode invocation (see [`FabricState::speculate_invoke`]).
pub struct SpecInvoke {
    /// The invocation's result against the pre-block state.
    pub result: InvokeResult,
    /// Namespaced state keys read from shared state (write-buffer hits are
    /// read-your-writes and excluded).
    pub reads: Vec<Vec<u8>>,
    /// Buffered writes, ready for [`FabricState::apply_writes`] if clean.
    pub writes: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

/// Per-invocation context: buffered writes over the shared bucket tree.
struct FabricContext<'a> {
    tree: &'a mut BucketTree<LsmStore>,
    mem: &'a mut MemMeter,
    addr: Address,
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Namespaced keys read from the shared tree (not the write buffer) —
    /// the speculative executor's conflict-detection read set.
    reads: BTreeSet<Vec<u8>>,
    caller: [u8; 20],
    height: u64,
    units: u64,
    state_ops: u64,
    alloc_live: u64,
    peak_alloc: u64,
    storage_error: Option<String>,
}

impl ChaincodeContext for FabricContext<'_> {
    fn get_state(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.units += 1;
        self.state_ops += 1;
        let nkey = namespaced(&self.addr, key);
        if let Some(buffered) = self.writes.get(&nkey) {
            return buffered.clone();
        }
        self.reads.insert(nkey.clone());
        match self.tree.get(&nkey) {
            Ok(v) => v,
            Err(e) => {
                self.storage_error = Some(e.to_string());
                None
            }
        }
    }

    fn put_state(&mut self, key: &[u8], value: &[u8]) {
        self.units += 2;
        self.state_ops += 1;
        self.writes.insert(namespaced(&self.addr, key), Some(value.to_vec()));
    }

    fn delete_state(&mut self, key: &[u8]) {
        self.units += 2;
        self.state_ops += 1;
        self.writes.insert(namespaced(&self.addr, key), None);
    }

    fn caller(&self) -> [u8; 20] {
        self.caller
    }

    fn block_height(&self) -> u64 {
        self.height
    }

    fn charge(&mut self, units: u64) {
        self.units += units;
    }

    fn alloc(&mut self, bytes: u64) -> Result<(), String> {
        self.mem.alloc(bytes).map_err(|e| e.to_string())?;
        self.alloc_live += bytes;
        self.peak_alloc = self.peak_alloc.max(self.alloc_live);
        Ok(())
    }

    fn free(&mut self, bytes: u64) {
        let freed = bytes.min(self.alloc_live);
        self.mem.free(freed);
        self.alloc_live -= freed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_contracts::{cpuheavy, smallbank, ycsb};
    use bb_crypto::KeyPair;

    fn tx(seed: u64, nonce: u64, to: Address, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, 0, payload)
    }

    fn state_with_ycsb() -> (FabricState, Address) {
        let mut s = FabricState::new(64, 1 << 30);
        let addr = Address::from_index(500);
        s.install(addr, ycsb::bundle().native);
        (s, addr)
    }

    #[test]
    fn invoke_writes_and_reads_namespaced_state() {
        let (mut s, addr) = state_with_ycsb();
        let r = s.invoke(&tx(1, 0, addr, ycsb::write_call(9, b"val")), 1, true);
        assert!(r.success, "{:?}", r.error);
        assert!(r.units > 0);
        let r = s.invoke(&tx(1, 1, addr, ycsb::read_call(9)), 1, true);
        assert_eq!(r.output, b"val");
        assert_eq!(s.get_state(&addr, &ycsb::record_key(9)).unwrap(), Some(b"val".to_vec()));
    }

    #[test]
    fn chaincodes_are_isolated_by_namespace() {
        let mut s = FabricState::new(64, 1 << 30);
        let a = Address::from_index(1);
        let b = Address::from_index(2);
        s.install(a, ycsb::bundle().native);
        s.install(b, ycsb::bundle().native);
        s.invoke(&tx(1, 0, a, ycsb::write_call(1, b"from-a")), 1, true);
        let r = s.invoke(&tx(1, 1, b, ycsb::read_call(1)), 1, true);
        assert!(r.output.is_empty(), "chaincode b must not see a's state");
    }

    #[test]
    fn failed_invocation_rolls_back() {
        let mut s = FabricState::new(64, 1 << 30);
        let addr = Address::from_index(3);
        s.install(addr, smallbank::bundle().native);
        let root = s.root();
        let r = s.invoke(&tx(1, 0, addr, smallbank::send_payment_call(1, 2, 100)), 1, true);
        assert!(!r.success);
        assert_eq!(s.root(), root, "failed chaincode must not move the state root");
    }

    #[test]
    fn query_path_does_not_commit() {
        let (mut s, addr) = state_with_ycsb();
        let root = s.root();
        let r = s.invoke(&tx(1, 0, addr, ycsb::write_call(5, b"x")), 1, false);
        assert!(r.success);
        assert_eq!(s.root(), root);
        assert_eq!(s.get_state(&addr, &ycsb::record_key(5)).unwrap(), None);
    }

    #[test]
    fn missing_chaincode_and_malformed_payload_fail() {
        let (mut s, addr) = state_with_ycsb();
        let r = s.invoke(&tx(1, 0, Address::from_index(999), ycsb::read_call(1)), 1, true);
        assert!(!r.success);
        let mut bad = tx(1, 0, addr, vec![]);
        bad.payload.clear();
        let r = s.invoke(&bad, 1, true);
        assert!(!r.success);
    }

    #[test]
    fn allocation_cap_models_node_ram() {
        let mut s = FabricState::new(64, 1 << 20); // 1 MiB cap
        let addr = Address::from_index(4);
        s.install(addr, cpuheavy::bundle().native);
        let r = s.invoke(&tx(1, 0, addr, cpuheavy::sort_call(1_000_000)), 1, true);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("out of memory"));
        // A small sort fits and records its peak.
        let r = s.invoke(&tx(1, 1, addr, cpuheavy::sort_call(1000)), 1, true);
        assert!(r.success);
        assert_eq!(r.peak_alloc, 8000);
        assert!(s.mem_peak() >= 8000);
    }

    #[test]
    fn disk_usage_is_flat_key_value() {
        let (mut s, addr) = state_with_ycsb();
        for i in 0..200u64 {
            s.invoke(&tx(1, i, addr, ycsb::write_call(i, &[7u8; 100])), 1, true);
        }
        // Writes stay pending until the block seals.
        assert_eq!(s.store_stats().writes, 0);
        s.commit_block().unwrap();
        let stats = s.store_stats();
        // One write per put, all in a single WAL batch: no trie-style
        // amplification.
        assert!(stats.writes <= 220, "writes {}", stats.writes);
        assert_eq!(stats.batch_writes, 1);
        assert!(stats.disk_bytes > 100 * 200);
        let (flushed, _) = s.flush_stats();
        assert_eq!(flushed, 200);
    }
}
