//! Configuration and cost model for the Fabric-like platform.

use bb_net::LinkParams;
use bb_sim::SimDuration;

/// Full configuration of a Fabric-like PBFT network.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Validating-peer count.
    pub nodes: u32,
    /// Requests per consensus batch (the paper's default `batchSize` 500).
    pub batch_size: usize,
    /// Propose a partial batch after this long.
    pub batch_timeout: SimDuration,
    /// PBFT view-change timeout.
    pub view_timeout: SimDuration,
    /// Bounded incoming message channel per node; arrivals beyond this are
    /// dropped — the Section 4.1.2 scalability killer.
    pub channel_capacity: usize,
    /// CPU cost to process one item on the consensus pipeline (a relayed
    /// request or a consensus message).
    pub msg_process_cost: SimDuration,
    /// Ingress pacing: each server's RPC thread admits one client request
    /// per interval (gRPC flow control); 6.25 ms ≈ 160 tx/s per server, so
    /// 8 servers admit ≈ 1280 tx/s — the paper's ~1273 tx/s peak.
    pub ingress_interval: SimDuration,
    /// Fixed chaincode-invocation overhead (the Docker/gRPC hop).
    pub invoke_overhead: SimDuration,
    /// Cost per chaincode state operation (RocksDB touch).
    pub state_op_cost: SimDuration,
    /// Simulated nanoseconds per native chaincode work unit (compiled code
    /// inside the container runtime — ~50× cheaper than EVM gas).
    pub ns_per_unit: f64,
    /// Fixed node process footprint.
    pub mem_base: u64,
    /// Node RAM cap for chaincode allocations.
    pub node_mem_bytes: u64,
    /// Network link parameters.
    pub link: LinkParams,
    /// Client→server RPC latency.
    pub rpc_delay: SimDuration,
    /// Buckets in the state tree.
    pub state_buckets: usize,
    /// Cores per node.
    pub cores: u32,
    /// Post-restart catch-up policy: sequence gaps strictly larger than
    /// this are closed by chunked snapshot state sync (a pinned LSM
    /// snapshot streamed from a live peer) instead of batch-by-batch
    /// re-execution. `u64::MAX` disables it.
    pub snapshot_sync_blocks: u64,
    /// Payload bytes per snapshot sync chunk.
    pub snapshot_chunk_bytes: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl FabricConfig {
    /// The paper's deployment at `nodes` peers.
    pub fn with_nodes(nodes: u32) -> FabricConfig {
        FabricConfig {
            nodes,
            batch_size: 500,
            batch_timeout: SimDuration::from_millis(300),
            view_timeout: SimDuration::from_secs(5),
            channel_capacity: 1000,
            msg_process_cost: SimDuration::from_micros(280),
            ingress_interval: SimDuration::from_micros(6250),
            invoke_overhead: SimDuration::from_micros(80),
            state_op_cost: SimDuration::from_micros(20),
            ns_per_unit: 10.0,
            mem_base: 350 << 20,
            node_mem_bytes: 32 << 30,
            link: LinkParams::default(),
            rpc_delay: SimDuration::from_micros(800),
            state_buckets: 1024,
            cores: 8,
            snapshot_sync_blocks: 24,
            snapshot_chunk_bytes: 256 << 10,
            seed: 42,
        }
    }

    /// CPU time for `units` of native chaincode work.
    pub fn exec_time(&self, units: u64) -> SimDuration {
        SimDuration::from_secs_f64(units as f64 * self.ns_per_unit * 1e-9)
    }

    /// Full cost of one chaincode invocation.
    pub fn invoke_time(&self, units: u64, state_ops: u64) -> SimDuration {
        self.invoke_overhead
            + SimDuration::from_micros(self.state_op_cost.as_micros() * state_ops)
            + self.exec_time(units)
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::with_nodes(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingress_admits_near_the_paper_peak() {
        let c = FabricConfig::default();
        let per_server = 1_000_000 / c.ingress_interval.as_micros();
        // 8 servers × 160 tx/s ≈ 1280 — the paper's ~1273 tx/s peak.
        assert_eq!(per_server * 8, 1280);
    }

    #[test]
    fn invocation_cost_scales_with_state_ops() {
        let c = FabricConfig::default();
        let ycsb = c.invoke_time(6, 2);
        let smallbank = c.invoke_time(12, 4);
        assert!(smallbank > ycsb);
        assert!(ycsb.as_micros() > 100);
    }

    #[test]
    fn native_execution_is_much_cheaper_than_evm() {
        let c = FabricConfig::default();
        // 20M quicksort units ≈ 0.2 s — the Figure 11 native data point.
        let t = c.exec_time(20_000_000);
        assert!(t.as_secs_f64() > 0.1 && t.as_secs_f64() < 0.4, "{t}");
    }
}
