//! The Fabric-like network world: PBFT over the simulated network with a
//! bounded, CPU-metered message channel per peer.
//!
//! Every client request and every consensus message lands in a node's
//! bounded inbox and is drained serially at `msg_process_cost` per message.
//! When the inbox is full, arrivals are *dropped* — requests and prepares
//! alike — which is the exact mechanism behind the paper's ≥16-node
//! collapse: "the consensus messages are rejected by other peers on account
//! of the message channel being full. As messages are dropped, the views
//! start to diverge and lead to unreachable consensus" (Section 4.1.2).
//!
//! The world is *sharded*: each peer is a lane of a
//! [`ShardedEngine`], every event routes to exactly one peer, and all
//! cross-peer traffic goes through the network outbox, so one Fabric run can
//! execute its per-node work (batch execution, message processing) on
//! several cores while staying byte-identical to the serial path (see
//! `bb_sim::shard` and DESIGN.md §5).

use crate::config::FabricConfig;
use crate::state::{FabricState, InvokeResult, SpecInvoke, STORE_PREFIX};
use bb_consensus::pbft::{Action, PbftConfig, PbftMsg, PbftNode};
use bb_crypto::Hash256;
use bb_merkle::merkle_root;
use bb_net::Network;
use bb_storage::FaultVfs;
use bb_sim::{CpuMeter, Effects, ShardedEngine, ShardedWorld, SimDuration, SimRng, SimTime};
use bb_types::{Address, Block, BlockHeader, BlockSummary, Encoder, NodeId, Transaction, TxId};
use blockbench::connector::{
    BlockchainConnector, DirectExec, Fault, PlatformStats, Query, QueryError, QueryResult,
};
use std::sync::{Arc, Mutex};
use blockbench::contract::ContractBundle;
use std::collections::{HashSet, VecDeque};

/// Events of the Fabric world.
#[derive(Debug, Clone)]
pub enum FabEvent {
    /// A client request cleared a peer's paced RPC ingress thread.
    Ingress {
        /// Receiving peer.
        to: NodeId,
        /// Encoded transaction.
        req: Vec<u8>,
    },
    /// A consensus message arrived at a peer's channel.
    Consensus {
        /// Receiving peer.
        to: NodeId,
        /// Sending peer.
        from: NodeId,
        /// The message.
        msg: PbftMsg,
    },
    /// The peer's serial message processor finished one item.
    Drain {
        /// The peer.
        node: NodeId,
        /// Pipeline generation (stale drains are ignored).
        generation: u64,
    },
    /// PBFT timer poll.
    Wake {
        /// The peer.
        node: NodeId,
    },
    /// A restarted peer too far behind to replay batch-by-batch asks a
    /// live peer for one chunk of its state snapshot.
    SnapshotRequest {
        /// Serving peer.
        to: NodeId,
        /// Recovering peer.
        from: NodeId,
        /// Pinned snapshot session on the server; `None` opens one.
        session: Option<u64>,
        /// Resume after this key (exclusive); `None` starts the stream.
        after: Option<Vec<u8>>,
    },
    /// One bounded chunk of a pinned peer snapshot: raw store entries
    /// (state values and the `!b/` block records ride together).
    SnapshotChunk {
        /// Recovering peer.
        to: NodeId,
        /// Serving peer.
        from: NodeId,
        /// The server's pinned session, echoed back for the next request.
        session: u64,
        /// Raw `(key, value)` store entries.
        entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
        /// True when the snapshot's key space is exhausted.
        done: bool,
    },
}

enum InboxItem {
    Message(NodeId, PbftMsg),
}

/// Key prefix of durable per-block records in each peer's LSM store.
/// Outside the `s:` state namespace, so the bucket digests never see it.
const BLOCK_META_PREFIX: &[u8] = b"!b/";

/// Big-endian height key: `scan_prefix` returns records in chain order.
fn block_meta_key(height: u64) -> Vec<u8> {
    let mut k = BLOCK_META_PREFIX.to_vec();
    k.extend_from_slice(&height.to_be_bytes());
    k
}

/// Record value: the PBFT sequence floor as of this block (0 for blocks
/// installed outside consensus, i.e. preloads) followed by the encoded
/// block. The floor is stored explicitly because preloaded blocks consume
/// heights without consuming sequence numbers.
fn block_meta_record(pbft_floor: u64, block: &Block) -> Vec<u8> {
    let mut v = pbft_floor.to_be_bytes().to_vec();
    v.extend_from_slice(&block.encode());
    v
}

fn decode_block_meta(value: &[u8]) -> Option<(u64, Block)> {
    let floor = u64::from_be_bytes(value.get(..8)?.try_into().ok()?);
    let block = Block::decode(&value[8..]).ok()?;
    Some((floor, block))
}

struct FabNode {
    pbft: PbftNode,
    state: FabricState,
    inbox: VecDeque<InboxItem>,
    draining: bool,
    drain_generation: u64,
    /// Executed transaction ids (dedupe across re-proposals).
    executed: HashSet<TxId>,
    /// Committed chain.
    blocks: Vec<Block>,
    receipts: Vec<Vec<(TxId, bool)>>,
    cpu: CpuMeter,
    dropped_msgs: u64,
    crashed: bool,
    wake_scheduled: Option<SimTime>,
    /// RPC ingress pacing (gRPC flow control).
    ingress_busy_until: SimTime,
    /// Execution time owed by the pipeline before the next drain.
    pipeline_penalty: SimDuration,
    /// Confirmed-block log; only the observer (node 0) appends to it.
    confirmed: Vec<BlockSummary>,
    /// Set while the peer is catching up after a durable-state restart.
    restarted_at: Option<SimTime>,
    /// The cluster's committed sequence at the restart instant; reaching
    /// it ends the recovery window.
    sync_target: Option<u64>,
    /// Wall-clock (simulated) milliseconds from restart to caught-up.
    recovery_ms: u64,
    /// Blocks re-fetched from peers after restarts.
    resync_blocks: u64,
    /// Bytes of block data re-fetched after restarts.
    resync_bytes: u64,
    /// Set while a snapshot transfer replaces this peer's state; committed
    /// batches are dropped until the transferred floor is adopted (the
    /// trailing `SyncRequest` replays them).
    snapshot_syncing: bool,
    /// Snapshot chunks received.
    snapshot_chunks: u64,
    /// Payload bytes of those chunks.
    snapshot_bytes: u64,
    /// WAL records replayed across restarts.
    wal_replayed: u64,
    /// Torn WAL tails truncated across restarts.
    wal_truncated: u64,
    /// Optimistic-executor counters (see `PlatformStats`).
    exec_conflicts: u64,
    exec_serial_us: u64,
    exec_modeled_us: u64,
}

/// Read-only context shared by every lane.
struct FabCtx {
    config: FabricConfig,
}

/// The sharded-world marker type for Fabric.
struct FabWorld;

/// The Fabric-like platform.
pub struct FabricChain {
    config: FabricConfig,
    engine: ShardedEngine<FabWorld>,
    network: Network,
    contracts: Vec<(Address, blockbench::contract::ChaincodeFactory)>,
    mem_peak: u64,
}

impl ShardedWorld for FabWorld {
    type Event = FabEvent;
    type Node = FabNode;
    type Ctx = FabCtx;

    fn route(_ctx: &FabCtx, event: &FabEvent) -> u32 {
        match event {
            FabEvent::Ingress { to, .. }
            | FabEvent::Consensus { to, .. }
            | FabEvent::SnapshotRequest { to, .. }
            | FabEvent::SnapshotChunk { to, .. } => to.0,
            FabEvent::Drain { node, .. } | FabEvent::Wake { node } => node.0,
        }
    }

    fn handle(
        ctx: &FabCtx,
        lane: u32,
        node: &mut FabNode,
        now: SimTime,
        event: FabEvent,
        fx: &mut Effects<FabEvent>,
    ) {
        let id = NodeId(lane);
        match event {
            FabEvent::Ingress { req, .. } => on_ingress(ctx, node, id, now, req, fx),
            FabEvent::Consensus { from, msg, .. } => {
                enqueue(ctx, node, id, now, InboxItem::Message(from, msg), fx)
            }
            FabEvent::Drain { generation, .. } => on_drain(ctx, node, id, now, generation, fx),
            FabEvent::Wake { .. } => on_wake(ctx, node, id, now, fx),
            FabEvent::SnapshotRequest { from, session, after, .. } => {
                on_snapshot_request(ctx, node, id, from, session, after, fx)
            }
            FabEvent::SnapshotChunk { from, session, entries, done, .. } => {
                on_snapshot_chunk(ctx, node, id, now, from, session, entries, done, fx)
            }
        }
    }
}

/// A client request cleared the paced ingress thread: hand it to PBFT
/// (which forwards to the primary) and relay it to the other peers so
/// they can watch for liveness. Relays travel through the *bounded*
/// consensus channel.
fn on_ingress(
    ctx: &FabCtx,
    node: &mut FabNode,
    to: NodeId,
    now: SimTime,
    req: Vec<u8>,
    fx: &mut Effects<FabEvent>,
) {
    if node.crashed {
        return;
    }
    // Ingress-side signature verification.
    node.cpu.charge(now, SimDuration::from_micros(500));
    let actions = node.pbft.on_request(req.clone(), now);
    let primary_gets_forward = actions
        .iter()
        .any(|a| matches!(a, Action::Send(_, PbftMsg::Forward(_))));
    dispatch(ctx, node, to, now, actions, fx);
    // Relay to everyone who has not seen it (skip the primary if the
    // PBFT layer already forwarded there).
    let primary = {
        // Reconstruct the primary of the node's current view.
        let view = node.pbft.view();
        NodeId((view % ctx.config.nodes as u64) as u32)
    };
    for peer in (0..ctx.config.nodes).map(NodeId) {
        if peer == to || (primary_gets_forward && peer == primary) {
            continue;
        }
        send_msg(peer, PbftMsg::Forward(req.clone()), fx);
    }
    schedule_wake(node, to, now, fx);
}

/// Deliver into the bounded channel; full channel drops the item.
fn enqueue(
    ctx: &FabCtx,
    node: &mut FabNode,
    to: NodeId,
    now: SimTime,
    item: InboxItem,
    fx: &mut Effects<FabEvent>,
) {
    let cap = ctx.config.channel_capacity;
    let cost = ctx.config.msg_process_cost;
    if node.crashed {
        return;
    }
    if node.inbox.len() >= cap {
        node.dropped_msgs += 1;
        return;
    }
    node.inbox.push_back(item);
    if !node.draining {
        node.draining = true;
        node.drain_generation += 1;
        let generation = node.drain_generation;
        let penalty = std::mem::take(&mut node.pipeline_penalty);
        fx.schedule(now + cost + penalty, FabEvent::Drain { node: to, generation });
    }
}

fn on_drain(
    ctx: &FabCtx,
    node: &mut FabNode,
    id: NodeId,
    now: SimTime,
    generation: u64,
    fx: &mut Effects<FabEvent>,
) {
    let cost = ctx.config.msg_process_cost;
    if node.crashed || node.drain_generation != generation {
        return;
    }
    node.cpu.charge(now, cost);
    let Some(item) = node.inbox.pop_front() else {
        node.draining = false;
        return;
    };
    let InboxItem::Message(from, msg) = item;
    let actions = node.pbft.on_message(from, msg, now);
    if node.inbox.is_empty() {
        node.draining = false;
    } else {
        node.drain_generation += 1;
        let generation = node.drain_generation;
        let penalty = std::mem::take(&mut node.pipeline_penalty);
        fx.schedule(now + cost + penalty, FabEvent::Drain { node: id, generation });
    }
    dispatch(ctx, node, id, now, actions, fx);
    schedule_wake(node, id, now, fx);
}

fn on_wake(ctx: &FabCtx, node: &mut FabNode, id: NodeId, now: SimTime, fx: &mut Effects<FabEvent>) {
    node.wake_scheduled = None;
    if node.crashed {
        return;
    }
    let actions = node.pbft.on_tick(now);
    dispatch(ctx, node, id, now, actions, fx);
    schedule_wake(node, id, now, fx);
}

fn schedule_wake(node: &mut FabNode, id: NodeId, now: SimTime, fx: &mut Effects<FabEvent>) {
    if node.crashed {
        return;
    }
    let Some(wake) = node.pbft.next_wake() else {
        return;
    };
    let wake = wake.max(now + SimDuration::from_micros(1));
    if node.wake_scheduled.is_none_or(|t| wake < t) {
        node.wake_scheduled = Some(wake);
        fx.schedule(wake, FabEvent::Wake { node: id });
    }
}

fn dispatch(
    ctx: &FabCtx,
    node: &mut FabNode,
    from: NodeId,
    now: SimTime,
    actions: Vec<Action>,
    fx: &mut Effects<FabEvent>,
) {
    for action in actions {
        match action {
            Action::Send(to, msg) => send_msg(to, msg, fx),
            Action::Broadcast(msg) => {
                for to in (0..ctx.config.nodes).map(NodeId) {
                    if to != from {
                        send_msg(to, msg.clone(), fx);
                    }
                }
            }
            Action::CommitBatch { seq, batch } => commit_batch(ctx, node, from, now, seq, batch),
            // A replica jumped past garbage-collected consensus history.
            // With the default horizon (1024 batches) no benchmark sweep
            // ever trims the log, so this only fires in hand-built
            // scenarios; the simulation does not model the application
            // state transfer a real deployment would run here — the
            // replica keeps serving consensus from the checkpoint on.
            Action::InstallCheckpoint { .. } => {}
        }
    }
}

/// Queue a consensus message into the network outbox. Delivery time (and
/// loss under faults) is decided at the window merge; corrupted messages
/// fail signature verification at the receiver and are discarded (the
/// paper's "random response" fault, Section 3.3).
fn send_msg(to: NodeId, msg: PbftMsg, fx: &mut Effects<FabEvent>) {
    let from = NodeId(fx.lane());
    let bytes = msg.byte_size();
    fx.send(to.0, bytes, move |_at| FabEvent::Consensus { to, from, msg });
}

/// Execute a deduplicated batch through the optimistic parallel executor:
/// speculate every chaincode invocation against the pre-block state (the
/// coarse state lock also keeps the shared chaincode memory meter
/// deterministic), then commit in canonical order — clean winners apply
/// their buffered writes, conflicted losers re-invoke serially at their
/// slot. The simulation bills the serial execution time, so throughput
/// figures are unchanged; parallelism lands in the modeled counters.
fn execute_batch_txs(
    ctx: &FabCtx,
    node: &mut FabNode,
    height: u64,
    txs: &[Arc<Transaction>],
) -> (Vec<(TxId, bool)>, SimDuration) {
    let threads = bb_exec::resolved_threads();
    let specs: Vec<SpecInvoke> = {
        let state = Mutex::new(&mut node.state);
        bb_exec::speculate(txs.len(), threads, |i| {
            state.lock().expect("state lock").speculate_invoke(&txs[i], height)
        })
    };
    let cost = |r: &InvokeResult| ctx.config.invoke_time(r.units, r.state_ops).as_micros();
    let mut committed = bb_exec::KeySet::new();
    let mut receipts = Vec::with_capacity(txs.len());
    let mut conflicts = 0u64;
    let mut winner_us = 0u64;
    let mut loser_us = Vec::new();
    let mut spec_us = Vec::with_capacity(txs.len());
    for (tx, spec) in txs.iter().zip(specs) {
        spec_us.push(cost(&spec.result));
        if !committed.conflicts(&spec.reads) {
            // Failed invocations carry no writes; applying is a no-op.
            let applied =
                !spec.result.success || node.state.apply_writes(&spec.writes).is_ok();
            if applied {
                committed.record(spec.writes.iter().map(|(k, _)| k.clone()));
                winner_us += cost(&spec.result);
                receipts.push((tx.id(), spec.result.success));
                continue;
            }
            // Mid-apply storage failure: the serial re-invocation below
            // owns the outcome (matching the classic flush-error path).
        }
        conflicts += 1;
        let re = node.state.speculate_invoke(tx, height);
        let ok = re.result.success && node.state.apply_writes(&re.writes).is_ok();
        committed.record(re.writes.iter().map(|(k, _)| k.clone()));
        loser_us.push(cost(&re.result));
        receipts.push((tx.id(), ok));
    }
    let model = bb_exec::model_block(&spec_us, winner_us, &loser_us);
    node.exec_conflicts += conflicts;
    node.exec_serial_us += model.serial_us;
    node.exec_modeled_us += model.modeled_us;
    (receipts, SimDuration::from_micros(model.serial_us))
}

/// Execute a committed batch and append the block.
fn commit_batch(
    ctx: &FabCtx,
    node: &mut FabNode,
    at: NodeId,
    now: SimTime,
    seq: u64,
    batch: Vec<Vec<u8>>,
) {
    if node.snapshot_syncing {
        // The node's state is mid-transfer: executing against it would
        // diverge. The batch is not lost — the post-transfer `SyncRequest`
        // replays everything committed past the snapshot's floor.
        return;
    }
    let height = node.blocks.len() as u64 + 1;
    let mut txs: Vec<Arc<Transaction>> = Vec::with_capacity(batch.len());
    for raw in &batch {
        let Ok(tx) = Transaction::decode(raw) else {
            continue;
        };
        if !node.executed.insert(tx.id()) {
            continue; // re-proposed duplicate
        }
        txs.push(Arc::new(tx));
    }
    let (receipts, exec_time) = execute_batch_txs(ctx, node, height, &txs);
    node.cpu.charge(now, exec_time);
    // Execution occupies the same event loop as message processing:
    // the next drain waits for it.
    node.pipeline_penalty += exec_time;
    let parent = node.blocks.last().map(|b| b.id()).unwrap_or(Hash256::ZERO);
    // Headers must be byte-identical across replicas: the timestamp is
    // the deterministic sequence number, not local delivery time.
    let header = BlockHeader {
        parent,
        height,
        timestamp_us: seq,
        tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
        state_root: node.state.root(),
        proposer: NodeId((seq % ctx.config.nodes as u64) as u32),
        difficulty: 0,
        round: seq,
    };
    let block = Block { header, txs };
    let record = block_meta_record(seq, &block);
    let block_bytes = (record.len() - 8) as u64;
    // Seal the batch: state writes and the durable block record flush as
    // one atomic LSM batch — a crash keeps both or neither.
    node.state
        .commit_block_with_meta(vec![(block_meta_key(height), Some(record))])
        .expect("state store healthy");
    if let Some(t0) = node.restarted_at {
        node.resync_blocks += 1;
        node.resync_bytes += block_bytes;
        if node.sync_target.is_some_and(|t| seq >= t) {
            // A completed recovery records at least 1 ms: `recovery_ms == 0`
            // means "never caught up", and a sub-millisecond catch-up (no
            // blocks mined during the outage) must not read as that.
            node.recovery_ms = node.recovery_ms.max((now.since(t0).as_micros() / 1000).max(1));
            node.restarted_at = None;
            node.sync_target = None;
        }
    }
    if at.index() == 0 {
        // PBFT confirms immediately: "Hyperledger confirms a block as
        // soon as it appears on the blockchain" (Section 3.2).
        node.confirmed.push(BlockSummary {
            id: block.id(),
            height,
            proposer: block.header.proposer,
            confirmed_at_us: now.as_micros(),
            txs: receipts.clone(),
        });
    }
    node.receipts.push(receipts);
    node.blocks.push(block);
}

/// Rebuild the volatile chain bookkeeping (blocks, receipts, executed ids,
/// PBFT sequence floor) from a state's durable `!b/` records — shared by
/// the restart path and the snapshot-sync finish.
fn rebuild_chain_from_state(
    state: &mut FabricState,
) -> (u64, HashSet<TxId>, Vec<Block>, Vec<Vec<(TxId, bool)>>) {
    let mut records: Vec<(u64, Block)> = state
        .scan_meta(BLOCK_META_PREFIX)
        .expect("durable store recoverable")
        .iter()
        .filter_map(|(_, v)| decode_block_meta(v))
        .collect();
    records.sort_by_key(|(_, b)| b.header.height);
    let mut floor = 0u64;
    let mut executed = HashSet::new();
    let mut blocks = Vec::with_capacity(records.len());
    let mut receipts = Vec::with_capacity(records.len());
    for (f, block) in records {
        floor = floor.max(f);
        for tx in &block.txs {
            executed.insert(tx.id());
        }
        // Receipts were volatile; recovered blocks carry none.
        receipts.push(Vec::new());
        blocks.push(block);
    }
    (floor, executed, blocks, receipts)
}

/// Serve one chunk of a pinned store snapshot to a recovering peer. The
/// first request opens the session; the pin freezes the table set (one
/// consistent block boundary) while compaction keeps running with file
/// deletion deferred until the session closes. If the requester dies
/// mid-transfer the session stays pinned until this peer next restarts —
/// bounded garbage, matched by real snapshot servers' lease timeouts.
fn on_snapshot_request(
    ctx: &FabCtx,
    node: &mut FabNode,
    me: NodeId,
    from: NodeId,
    session: Option<u64>,
    after: Option<Vec<u8>>,
    fx: &mut Effects<FabEvent>,
) {
    if node.crashed {
        return;
    }
    let snap = session.unwrap_or_else(|| node.state.snapshot_open());
    let Ok((entries, done)) =
        node.state.snapshot_chunk(snap, after.as_deref(), ctx.config.snapshot_chunk_bytes)
    else {
        // Unknown session (this peer restarted mid-serve): the transfer
        // stalls exactly like a crashed server would.
        return;
    };
    if done {
        node.state.snapshot_close(snap);
    }
    let bytes = 16 + entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
    let entries = Arc::new(entries);
    fx.send(from.0, bytes, move |_at| FabEvent::SnapshotChunk {
        to: from,
        from: me,
        session: snap,
        entries,
        done,
    });
}

/// Apply a received snapshot chunk; on the final chunk, rebuild digests
/// and chain from the transferred store, resume PBFT at the transferred
/// floor, and replay anything committed since through a `SyncRequest`.
#[allow(clippy::too_many_arguments)]
fn on_snapshot_chunk(
    ctx: &FabCtx,
    node: &mut FabNode,
    me: NodeId,
    now: SimTime,
    from: NodeId,
    session: u64,
    entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
    done: bool,
    fx: &mut Effects<FabEvent>,
) {
    if node.crashed || !node.snapshot_syncing {
        return;
    }
    node.snapshot_chunks += 1;
    node.snapshot_bytes +=
        16 + entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
    node.state.apply_snapshot_entries(&entries).expect("fresh store healthy");
    if !done {
        let after = entries.last().map(|(k, _)| k.clone());
        fx.send(from.0, 64, move |_at| FabEvent::SnapshotRequest {
            to: from,
            from: me,
            session: Some(session),
            after,
        });
        return;
    }
    let buckets = ctx.config.state_buckets;
    let mem_cap = ctx.config.node_mem_bytes.saturating_sub(ctx.config.mem_base);
    let state = std::mem::replace(&mut node.state, FabricState::new(1, 0));
    let mut state =
        state.rebuild_keeping_chaincodes(buckets, mem_cap).expect("transferred store healthy");
    let (floor, executed, blocks, receipts) = rebuild_chain_from_state(&mut state);
    let pbft_config = PbftConfig {
        n: ctx.config.nodes,
        batch_size: ctx.config.batch_size,
        batch_timeout: ctx.config.batch_timeout,
        view_timeout: ctx.config.view_timeout,
        ..PbftConfig::default()
    };
    node.pbft = PbftNode::resume_at(me, pbft_config, floor);
    node.state = state;
    node.blocks = blocks;
    node.receipts = receipts;
    node.executed = executed;
    node.snapshot_syncing = false;
    if let (Some(t0), Some(target)) = (node.restarted_at, node.sync_target) {
        if floor >= target {
            node.recovery_ms = node.recovery_ms.max((now.since(t0).as_micros() / 1000).max(1));
            node.restarted_at = None;
            node.sync_target = None;
        }
    }
    // Batches committed while the transfer ran replay through the normal
    // resync path.
    send_msg(from, PbftMsg::SyncRequest { from_seq: floor }, fx);
    schedule_wake(node, me, now, fx);
}

impl FabricChain {
    /// Build a PBFT network per `config`.
    pub fn new(config: FabricConfig) -> FabricChain {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let pbft_config = PbftConfig {
            n: config.nodes,
            batch_size: config.batch_size,
            batch_timeout: config.batch_timeout,
            view_timeout: config.view_timeout,
            ..PbftConfig::default()
        };
        let nodes = (0..config.nodes)
            .map(|i| FabNode {
                pbft: PbftNode::new(NodeId(i), pbft_config.clone()),
                state: FabricState::new(
                    config.state_buckets,
                    config.node_mem_bytes.saturating_sub(config.mem_base),
                ),
                inbox: VecDeque::new(),
                draining: false,
                drain_generation: 0,
                executed: HashSet::new(),
                blocks: Vec::new(),
                receipts: Vec::new(),
                cpu: CpuMeter::new(config.cores),
                dropped_msgs: 0,
                crashed: false,
                wake_scheduled: None,
                ingress_busy_until: SimTime::ZERO,
                pipeline_penalty: SimDuration::ZERO,
                confirmed: Vec::new(),
                restarted_at: None,
                sync_target: None,
                recovery_ms: 0,
                resync_blocks: 0,
                resync_bytes: 0,
                snapshot_syncing: false,
                snapshot_chunks: 0,
                snapshot_bytes: 0,
                wal_replayed: 0,
                wal_truncated: 0,
                exec_conflicts: 0,
                exec_serial_us: 0,
                exec_modeled_us: 0,
            })
            .collect();
        let network = Network::new(config.nodes, config.link.clone(), rng.fork());
        let engine = ShardedEngine::new(
            FabCtx { config: config.clone() },
            nodes,
            network.min_latency(),
        );
        FabricChain { config, engine, network, contracts: Vec::new(), mem_peak: 0 }
    }

    /// Restart a crashed peer from its durable store: reopen the LSM
    /// (replaying the WAL and truncating any torn tail), rebuild the
    /// bucket digests and the chain from the per-block records, resume
    /// PBFT at the durable sequence floor, and ask a live peer for the
    /// committed batches past it.
    fn restart_node(&mut self, id: NodeId) {
        let now = self.engine.now();
        let peer = (0..self.config.nodes)
            .map(NodeId)
            .find(|&p| p != id && !self.network.is_crashed(p));
        let peer_floor = peer.map(|p| self.engine.with_node(p.0, |n| n.pbft.last_committed()));
        let pbft_config = PbftConfig {
            n: self.config.nodes,
            batch_size: self.config.batch_size,
            batch_timeout: self.config.batch_timeout,
            view_timeout: self.config.view_timeout,
            ..PbftConfig::default()
        };
        let buckets = self.config.state_buckets;
        let mem_cap = self.config.node_mem_bytes.saturating_sub(self.config.mem_base);
        let snapshot_sync_blocks = self.config.snapshot_sync_blocks;
        let contracts = &self.contracts;
        let (floor, snapshot) = self.engine.with_node_mut(id.0, |n| {
            // Reopen the store from the only thing the crash preserved:
            // the Vfs-backed files.
            let mut state = FabricState::reopen(n.state.vfs(), buckets, mem_cap)
                .expect("durable store recoverable");
            let st = state.store_stats();
            n.wal_replayed += st.wal_records_replayed;
            n.wal_truncated += st.wal_tail_truncated;
            // Chaincode binaries are redeployable artifacts, not state.
            for (addr, factory) in contracts {
                state.install(*addr, *factory);
            }
            // Rebuild the chain from the durable block records. Each
            // record rode the same atomic batch as its state flush, so
            // this list is exactly the blocks whose effects survive.
            let (floor, executed, blocks, receipts) = rebuild_chain_from_state(&mut state);
            // The gap is known synchronously from the live peer's committed
            // floor: too deep to replay batch-by-batch → discard the durable
            // prefix and pull the peer's whole snapshot in bounded chunks.
            let snapshot =
                peer_floor.is_some_and(|t| t.saturating_sub(floor) > snapshot_sync_blocks);
            if snapshot {
                let mut fresh = FabricState::new(buckets, mem_cap);
                for (addr, factory) in contracts {
                    fresh.install(*addr, *factory);
                }
                n.state = fresh;
                n.blocks = Vec::new();
                n.receipts = Vec::new();
                n.executed = HashSet::new();
            } else {
                n.state = state;
                n.blocks = blocks;
                n.receipts = receipts;
                n.executed = executed;
            }
            n.snapshot_syncing = snapshot;
            n.pbft = PbftNode::resume_at(id, pbft_config, floor);
            n.inbox.clear();
            n.draining = false;
            n.drain_generation += 1;
            n.pipeline_penalty = SimDuration::ZERO;
            n.wake_scheduled = None;
            n.crashed = false;
            n.sync_target = peer_floor.filter(|&t| t > floor);
            n.restarted_at = n.sync_target.map(|_| now);
            (floor, snapshot)
        });
        self.network.recover(id);
        if let Some(peer) = peer {
            if snapshot {
                // Open a pinned snapshot session on the peer and stream it.
                self.engine.schedule(
                    now,
                    FabEvent::SnapshotRequest { to: peer, from: id, session: None, after: None },
                );
            } else {
                // Fetch the committed batches past the durable floor.
                self.engine.schedule(
                    now,
                    FabEvent::Consensus {
                        to: peer,
                        from: id,
                        msg: PbftMsg::SyncRequest { from_seq: floor },
                    },
                );
            }
        }
        // Restart the PBFT timers.
        self.engine.schedule(now, FabEvent::Wake { node: id });
    }

    /// Consensus-message drops so far (diagnostics for the collapse).
    pub fn dropped_messages(&self) -> u64 {
        (0..self.config.nodes)
            .map(|i| self.engine.with_node(i, |n| n.dropped_msgs))
            .sum()
    }
}

impl BlockchainConnector for FabricChain {
    fn name(&self) -> &'static str {
        "hyperledger"
    }

    fn node_count(&self) -> u32 {
        self.config.nodes
    }

    fn deploy(&mut self, bundle: &ContractBundle) -> Address {
        let addr = Address::contract(&Address::ZERO, self.contracts.len() as u64);
        for i in 0..self.config.nodes {
            let native = bundle.native;
            self.engine.with_node_mut(i, |node| node.state.install(addr, native));
        }
        self.contracts.push((addr, bundle.native));
        addr
    }

    fn submit(&mut self, server: NodeId, tx: Transaction) -> bool {
        if self.network.is_crashed(server) {
            // A crashed peer's gRPC endpoint refuses connections; the client
            // sees the failure and does not burn a nonce on it.
            return false;
        }
        let now = self.engine.now();
        let rpc_delay = self.config.rpc_delay;
        let ingress_interval = self.config.ingress_interval;
        // The RPC ingress thread admits requests at a fixed pace; excess
        // queues here (client-visible latency), never inside consensus.
        let at = self.engine.with_node_mut(server.0, |node| {
            let at = node.ingress_busy_until.max(now + rpc_delay) + ingress_interval;
            node.ingress_busy_until = at;
            at
        });
        self.engine.schedule(at, FabEvent::Ingress { to: server, req: tx.encode() });
        true
    }

    fn advance_to(&mut self, t: SimTime) {
        self.engine.run_until(t, &mut self.network);
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn confirmed_blocks_since(&mut self, height: u64) -> Vec<BlockSummary> {
        self.engine.with_node(0, |node| {
            node.confirmed.iter().filter(|b| b.height > height).cloned().collect()
        })
    }

    fn query(&mut self, q: &Query) -> Result<QueryResult, QueryError> {
        match q {
            Query::BlockTxs { height } => {
                let idx = (*height as usize).checked_sub(1).ok_or(QueryError::NotFound)?;
                self.engine.with_node(0, |node| {
                    let block = node.blocks.get(idx).ok_or(QueryError::NotFound)?;
                    let mut enc = Encoder::with_capacity(block.txs.len() * 48 + 4);
                    enc.put_u32(block.txs.len() as u32);
                    for tx in &block.txs {
                        enc.put_raw(tx.from.as_bytes()).put_raw(tx.to.as_bytes()).put_u64(tx.value);
                    }
                    let cost = SimDuration::from_micros(20 + 4 * block.txs.len() as u64);
                    Ok(QueryResult { data: enc.finish(), server_cost: cost })
                })
            }
            Query::AccountAtBlock { .. } => {
                // "the system does not have APIs to query historical
                // states" (Section 3.4.2) — use the VersionKVStore
                // chaincode instead.
                Err(QueryError::Unsupported)
            }
            Query::Contract { address, payload } => {
                let invoke_time =
                    |units, ops| self.config.invoke_time(units, ops);
                self.engine.with_node_mut(0, |node| {
                    let kp = bb_crypto::KeyPair::from_seed(0);
                    let tx = Transaction::signed(&kp, 0, *address, 0, payload.clone());
                    let height = node.blocks.len() as u64;
                    let res = node.state.invoke(&tx, height, false);
                    if !res.success {
                        return Err(QueryError::Contract(
                            res.error.unwrap_or_else(|| "chaincode error".into()),
                        ));
                    }
                    Ok(QueryResult {
                        data: res.output,
                        server_cost: invoke_time(res.units, res.state_ops),
                    })
                })
            }
        }
    }

    fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                self.network.crash(node);
                self.engine.with_node_mut(node.0, |n| {
                    n.crashed = true;
                    // Amnesia: the inbox and pipeline are process memory.
                    // The chain/state maps linger until a Restart discards
                    // them, but no handler reads them while crashed.
                    n.inbox.clear();
                    n.draining = false;
                    n.drain_generation += 1;
                    n.pipeline_penalty = SimDuration::ZERO;
                    n.wake_scheduled = None;
                });
            }
            Fault::Recover(node) => {
                // Legacy gentle revive (a long GC pause, not a process
                // death): in-memory chain state is intact.
                self.network.recover(node);
                self.engine.with_node_mut(node.0, |n| n.crashed = false);
            }
            Fault::Restart(node) => self.restart_node(node),
            Fault::TornTail(node) => {
                let vfs = self.engine.with_node(node.0, |n| n.state.vfs());
                FaultVfs::new(vfs, self.config.seed ^ 0xF417_7A11 ^ node.0 as u64)
                    .tear_tail(&format!("{STORE_PREFIX}/wal"));
            }
            Fault::BitRot(node, flips) => {
                let vfs = self.engine.with_node(node.0, |n| n.state.vfs());
                FaultVfs::new(vfs, self.config.seed ^ 0x0B17_0707 ^ node.0 as u64)
                    .bit_rot(&format!("{STORE_PREFIX}/wal"), flips);
            }
            Fault::Delay(node, d) => self.network.set_extra_delay(node, d),
            Fault::Corrupt(node, p) => self.network.set_corrupt_prob(node, p),
            Fault::PartitionHalf { left } => self.network.partition_in_half(left),
            Fault::Heal => self.network.heal(),
        }
    }

    fn stats(&self) -> PlatformStats {
        let n = self.config.nodes as usize;
        let mut disk = 0u64;
        let mut mem_peak = self.mem_peak.max(self.config.mem_base);
        let mut cpu: Vec<f64> = Vec::new();
        let mut net: Vec<f64> = Vec::new();
        let (mut flushed, mut superseded, mut batches) = (0u64, 0u64, 0u64);
        let (mut wal_replayed, mut wal_truncated) = (0u64, 0u64);
        let (mut recovery_ms, mut resync_blocks, mut resync_bytes) = (0u64, 0u64, 0u64);
        let (mut stall_ms, mut debt, mut compacted) = (0u64, 0u64, 0u64);
        let (mut store_written, mut store_logical) = (0u64, 0u64);
        let (mut snap_chunks, mut snap_bytes) = (0u64, 0u64);
        let (mut exec_conflicts, mut exec_serial_us, mut exec_modeled_us) = (0u64, 0u64, 0u64);
        for i in 0..self.config.nodes {
            self.engine.with_node(i, |node| {
                let store_stats = node.state.store_stats();
                disk += store_stats.disk_bytes;
                batches += store_stats.batch_writes;
                stall_ms += store_stats.write_stall_ms;
                debt += store_stats.compaction_debt_bytes;
                compacted += store_stats.bytes_compacted;
                store_written += store_stats.bytes_written;
                store_logical += store_stats.logical_bytes;
                snap_chunks += node.snapshot_chunks;
                snap_bytes += node.snapshot_bytes;
                wal_replayed += node.wal_replayed;
                wal_truncated += node.wal_truncated;
                recovery_ms = recovery_ms.max(node.recovery_ms);
                resync_blocks += node.resync_blocks;
                resync_bytes += node.resync_bytes;
                exec_conflicts += node.exec_conflicts;
                exec_serial_us += node.exec_serial_us;
                exec_modeled_us += node.exec_modeled_us;
                let (f, s) = node.state.flush_stats();
                flushed += f;
                superseded += s;
                mem_peak = mem_peak.max(self.config.mem_base + node.state.mem_peak());
                let series = node.cpu.utilisation_series();
                if series.len() > cpu.len() {
                    cpu.resize(series.len(), 0.0);
                }
                for (j, v) in series.iter().enumerate() {
                    cpu[j] += v / n as f64;
                }
            });
            let tx = self.network.tx_mbps_series(NodeId(i));
            if tx.len() > net.len() {
                net.resize(tx.len(), 0.0);
            }
            for (j, v) in tx.iter().enumerate() {
                net[j] += v / n as f64;
            }
        }
        let (blocks, txs_committed) = self.engine.with_node(0, |node| {
            (
                node.blocks.len() as u64,
                node.confirmed.iter().map(|b| b.txs.len() as u64).sum(),
            )
        });
        PlatformStats {
            // PBFT never forks: every committed block is on the chain.
            blocks_total: blocks,
            blocks_main: blocks,
            txs_committed,
            disk_bytes: disk,
            mem_peak_bytes: mem_peak,
            cpu_utilisation: cpu,
            net_mbps: net,
            net_bytes: self.network.stats().bytes,
            // Fabric's Bucket-Merkle state has no Patricia node cache.
            trie_cache_hits: 0,
            trie_cache_misses: 0,
            state_nodes_flushed: flushed,
            state_nodes_dropped: superseded,
            batch_put_count: batches,
            wal_records_replayed: wal_replayed,
            wal_tail_truncated: wal_truncated,
            recovery_ms,
            resync_blocks,
            resync_bytes,
            write_stall_ms: stall_ms,
            compaction_debt_bytes: debt,
            bytes_compacted: compacted,
            storage_bytes_written: store_written,
            storage_logical_bytes: store_logical,
            snapshot_chunks: snap_chunks,
            snapshot_bytes: snap_bytes,
            exec_conflicts,
            exec_serial_us,
            exec_modeled_us,
        }
    }

    fn preload_blocks(&mut self, blocks: Vec<Vec<Transaction>>) {
        for txs in blocks {
            let txs: Vec<Arc<Transaction>> = txs.into_iter().map(Arc::new).collect();
            let now = self.engine.now();
            for i in 0..self.config.nodes {
                self.engine.with_node_mut(i, |node| {
                    let height = node.blocks.len() as u64 + 1;
                    let mut receipts = Vec::with_capacity(txs.len());
                    for tx in &txs {
                        node.executed.insert(tx.id());
                        let res = node.state.invoke(tx, height, true);
                        receipts.push((tx.id(), res.success));
                    }
                    let parent = node.blocks.last().map(|b| b.id()).unwrap_or(Hash256::ZERO);
                    let header = BlockHeader {
                        parent,
                        height,
                        timestamp_us: now.as_micros(),
                        tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
                        state_root: node.state.root(),
                        proposer: NodeId(0),
                        difficulty: 0,
                        round: height,
                    };
                    let block = Block { header, txs: txs.clone() };
                    // Preloads bypass consensus: record a zero sequence
                    // floor so a restart resumes PBFT from scratch.
                    node.state
                        .commit_block_with_meta(vec![(
                            block_meta_key(height),
                            Some(block_meta_record(0, &block)),
                        )])
                        .expect("setup store healthy");
                    if i == 0 {
                        node.confirmed.push(BlockSummary {
                            id: block.id(),
                            height,
                            proposer: NodeId(0),
                            confirmed_at_us: now.as_micros(),
                            txs: receipts.clone(),
                        });
                    }
                    node.receipts.push(receipts);
                    node.blocks.push(block);
                });
            }
        }
    }

    fn execute_direct(&mut self, tx: Transaction) -> DirectExec {
        let msg_process_cost = self.config.msg_process_cost;
        let invoke_time = |units, ops| self.config.invoke_time(units, ops);
        let mem_base = self.config.mem_base;
        let (exec, modeled) = self.engine.with_node_mut(0, |node| {
            let height = node.blocks.len() as u64;
            let res = node.state.invoke(&tx, height, true);
            // Each direct execution is its own "block" on this path.
            node.state.commit_block().expect("state store healthy");
            let modeled = mem_base + res.peak_alloc;
            (
                DirectExec {
                    success: res.success,
                    duration: msg_process_cost + invoke_time(res.units, res.state_ops),
                    gas_used: res.units,
                    modeled_mem: modeled,
                    output: res.output,
                    error: res.error,
                },
                modeled,
            )
        });
        self.mem_peak = self.mem_peak.max(modeled);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_contracts::{donothing, ycsb};
    use bb_crypto::KeyPair;

    fn chain(nodes: u32) -> FabricChain {
        FabricChain::new(FabricConfig::with_nodes(nodes))
    }

    fn client_tx(seed: u64, nonce: u64, to: Address, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, 0, payload)
    }

    #[test]
    fn transactions_commit_within_a_batch_timeout() {
        let mut c = chain(4);
        let addr = c.deploy(&ycsb::bundle());
        for nonce in 0..10 {
            c.submit(NodeId((nonce % 4) as u32), client_tx(1, nonce, addr, ycsb::write_call(nonce, b"v")));
        }
        c.advance_to(SimTime::from_secs(3));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 10);
        // Committed fast: within ~batch timeout + a few network hops.
        let first = &c.confirmed_blocks_since(0)[0];
        assert!(first.confirmed_at_us < 1_500_000, "took {}µs", first.confirmed_at_us);
    }

    #[test]
    fn all_peers_hold_identical_chains() {
        let mut c = chain(4);
        let addr = c.deploy(&ycsb::bundle());
        for nonce in 0..50 {
            c.submit(NodeId((nonce % 4) as u32), client_tx(2, nonce, addr, ycsb::write_call(nonce, b"x")));
        }
        c.advance_to(SimTime::from_secs(5));
        let reference: Vec<Hash256> =
            c.engine.with_node(0, |n| n.blocks.iter().map(|b| b.id()).collect());
        assert!(!reference.is_empty());
        for i in 1..4 {
            let other: Vec<Hash256> =
                c.engine.with_node(i, |n| n.blocks.iter().map(|b| b.id()).collect());
            assert_eq!(other, reference, "node {i} diverged");
        }
        // State roots agree too.
        let root = c.engine.with_node(0, |n| n.state.root());
        for i in 1..4 {
            assert_eq!(c.engine.with_node(i, |n| n.state.root()), root);
        }
    }

    #[test]
    fn four_of_twelve_crashes_stall_the_network() {
        let mut c = chain(12);
        let addr = c.deploy(&donothing::bundle());
        for i in 8..12 {
            c.inject(Fault::Crash(NodeId(i)));
        }
        for nonce in 0..20 {
            c.submit(NodeId(nonce as u32 % 8), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(60));
        // Quorum is n - f = 9 > 8 alive: nothing can commit (Figure 9).
        assert!(c.confirmed_blocks_since(0).is_empty());
    }

    #[test]
    fn four_of_sixteen_crashes_recover_via_view_change() {
        let mut c = chain(16);
        let addr = c.deploy(&donothing::bundle());
        // Crash the primary (node 0 is view-0 primary? no: keep node 0 as
        // observer; crash 1..5 including nothing special) — crash 4 backups.
        for i in 12..16 {
            c.inject(Fault::Crash(NodeId(i)));
        }
        for nonce in 0..20 {
            c.submit(NodeId(nonce as u32 % 8), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(60));
        // Quorum 11 ≤ 12 alive: commits happen.
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 20);
    }

    #[test]
    fn primary_crash_recovers_after_view_change() {
        let mut c = chain(4);
        let addr = c.deploy(&donothing::bundle());
        c.inject(Fault::Crash(NodeId(0)));
        for nonce in 0..5 {
            c.submit(NodeId(1 + nonce as u32 % 3), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(60));
        // Node 0 is the observer AND the crashed primary, so look at node 1.
        let (committed, view) = c
            .engine
            .with_node(1, |n| (n.receipts.iter().map(Vec::len).sum::<usize>(), n.pbft.view()));
        assert_eq!(committed, 5, "view change did not recover the cluster");
        assert!(view > 0);
    }

    #[test]
    fn torn_tail_restart_recovers_durable_prefix_and_resyncs() {
        let mut c = chain(4);
        let addr = c.deploy(&ycsb::bundle());
        // Pace submissions across batch timeouts so the pre-crash chain
        // holds several blocks (several WAL appends).
        for wave in 0..10u64 {
            c.advance_to(SimTime::from_millis(wave * 400));
            for k in 0..3u64 {
                let nonce = wave * 3 + k;
                c.submit(
                    NodeId((nonce % 4) as u32),
                    client_tx(7, nonce, addr, ycsb::write_call(nonce, b"v")),
                );
            }
        }
        c.advance_to(SimTime::from_secs(5));
        let pre_blocks = c.engine.with_node(3, |n| n.blocks.len());
        assert!(pre_blocks > 1, "need several pre-crash blocks, got {pre_blocks}");
        // Kill node 3 and tear the tail off its WAL: the final committed
        // batch (state + block record, atomically) is lost.
        c.inject(Fault::Crash(NodeId(3)));
        c.inject(Fault::TornTail(NodeId(3)));
        // The cluster keeps committing while node 3 is down.
        for nonce in 30..60 {
            c.submit(
                NodeId((nonce % 3) as u32),
                client_tx(7, nonce, addr, ycsb::write_call(nonce, b"w")),
            );
        }
        c.advance_to(SimTime::from_secs(10));
        c.inject(Fault::Restart(NodeId(3)));
        // Immediately after restart the node holds a strict durable
        // prefix of its pre-crash chain (the torn batch is gone).
        let recovered_blocks = c.engine.with_node(3, |n| n.blocks.len());
        assert!(recovered_blocks < pre_blocks, "{recovered_blocks} vs {pre_blocks}");
        c.advance_to(SimTime::from_secs(25));
        // Caught back up: chain and state byte-identical to the cluster.
        let reference: Vec<Hash256> =
            c.engine.with_node(0, |n| n.blocks.iter().map(|b| b.id()).collect());
        let recovered: Vec<Hash256> =
            c.engine.with_node(3, |n| n.blocks.iter().map(|b| b.id()).collect());
        assert_eq!(recovered, reference);
        assert_eq!(
            c.engine.with_node(3, |n| n.state.root()),
            c.engine.with_node(0, |n| n.state.root())
        );
        let s = c.stats();
        assert!(s.wal_tail_truncated >= 1, "torn tail never hit the WAL");
        assert!(s.wal_records_replayed > 0);
        assert!(s.resync_blocks > 0);
        assert!(s.recovery_ms > 0);
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 60);
    }

    #[test]
    fn deep_gap_restart_uses_snapshot_sync_instead_of_replay() {
        let mut config = FabricConfig::with_nodes(4);
        config.snapshot_sync_blocks = 3; // force the snapshot path on a modest gap
        let mut c = FabricChain::new(config);
        let addr = c.deploy(&ycsb::bundle());
        for wave in 0..5u64 {
            c.advance_to(SimTime::from_millis(wave * 400));
            for k in 0..3u64 {
                let nonce = wave * 3 + k;
                c.submit(
                    NodeId((nonce % 4) as u32),
                    client_tx(9, nonce, addr, ycsb::write_call(nonce, b"v")),
                );
            }
        }
        c.advance_to(SimTime::from_secs(4));
        c.inject(Fault::Crash(NodeId(3)));
        // The cluster commits well past the threshold while node 3 is down.
        for wave in 0..12u64 {
            c.advance_to(SimTime::from_secs(4) + SimDuration::from_millis(wave * 400));
            for k in 0..3u64 {
                let nonce = 15 + wave * 3 + k;
                c.submit(
                    NodeId((nonce % 3) as u32),
                    client_tx(9, nonce, addr, ycsb::write_call(nonce, b"w")),
                );
            }
        }
        c.advance_to(SimTime::from_secs(12));
        let gap = c.engine.with_node(0, |n| n.pbft.last_committed())
            - c.engine.with_node(3, |n| n.pbft.last_committed());
        assert!(gap > 3, "cluster only moved {gap} batches during the outage");
        c.inject(Fault::Restart(NodeId(3)));
        // The durable prefix was discarded in favour of a full snapshot pull.
        assert!(c.engine.with_node(3, |n| n.snapshot_syncing));
        c.advance_to(SimTime::from_secs(25));
        // Caught back up: chain and state byte-identical to the cluster.
        let reference: Vec<Hash256> =
            c.engine.with_node(0, |n| n.blocks.iter().map(|b| b.id()).collect());
        let recovered: Vec<Hash256> =
            c.engine.with_node(3, |n| n.blocks.iter().map(|b| b.id()).collect());
        assert_eq!(recovered, reference);
        assert_eq!(
            c.engine.with_node(3, |n| n.state.root()),
            c.engine.with_node(0, |n| n.state.root())
        );
        let s = c.stats();
        assert!(s.snapshot_chunks > 0, "snapshot path never engaged");
        assert!(s.snapshot_bytes > 0);
        assert!(s.recovery_ms > 0, "recovery never completed");
        // Only batches committed *during* the transfer replayed; the deep
        // gap itself travelled as raw store chunks.
        assert!(
            (s.resync_blocks as usize) < reference.len() / 2,
            "replayed {} of {} blocks",
            s.resync_blocks,
            reference.len()
        );
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 51);
    }

    #[test]
    fn even_partition_halts_without_forks() {
        let mut c = chain(8);
        let addr = c.deploy(&donothing::bundle());
        c.advance_to(SimTime::from_secs(1));
        c.inject(Fault::PartitionHalf { left: 4 });
        for nonce in 0..20 {
            c.submit(NodeId(nonce as u32 % 8), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(30));
        // Neither half reaches quorum 6: no commits, no forks.
        assert!(c.confirmed_blocks_since(0).is_empty());
        let s = c.stats();
        assert_eq!(s.blocks_total, s.blocks_main);
        // Heal: the cluster recovers and commits everything.
        c.inject(Fault::Heal);
        c.advance_to(SimTime::from_secs(120));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 20, "requests lost across the partition");
    }

    #[test]
    fn channel_overflow_collapses_a_large_loaded_cluster() {
        // 20 servers all admitting at full ingress rate: the relay traffic
        // every node must process exceeds its pipeline, the bounded channel
        // fills, and consensus messages start dropping — the paper's >16
        // node failure mode.
        let mut c = chain(20);
        let addr = c.deploy(&ycsb::bundle());
        let mut nonce = vec![0u64; 20];
        for tick in 0..120u64 {
            c.advance_to(SimTime::from_millis(tick * 50));
            for seed in 0..20u64 {
                for _ in 0..10 {
                    let n = nonce[seed as usize];
                    nonce[seed as usize] += 1;
                    c.submit(NodeId(seed as u32), client_tx(seed, n, addr, ycsb::write_call(n, b"v")));
                }
            }
        }
        c.advance_to(SimTime::from_secs(10));
        assert!(c.dropped_messages() > 0, "bounded channel never overflowed");
        // Committed throughput is far below the admitted ~3200 tx/s.
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        let rate = committed as f64 / 10.0;
        assert!(rate < 2000.0, "no collapse: rate {rate}");
    }

    #[test]
    fn throughput_is_pipeline_bound() {
        let mut c = chain(8);
        let addr = c.deploy(&donothing::bundle());
        // Offer ~3200 tx/s over 8 servers, paced like the driver.
        let mut nonce = vec![0u64; 8];
        for tick in 0..400u64 {
            c.advance_to(SimTime::from_millis(tick * 25));
            for seed in 0..8u64 {
                for _ in 0..10 {
                    let n = nonce[seed as usize];
                    nonce[seed as usize] += 1;
                    c.submit(NodeId(seed as u32), client_tx(seed, n, addr, donothing::call()));
                }
            }
        }
        c.advance_to(SimTime::from_secs(14));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        let rate = committed as f64 / 14.0;
        // Near the paper's ~1273 tx/s peak: 8 servers × 160 tx/s admission.
        assert!(rate > 900.0 && rate < 1500.0, "rate {rate}");
    }

    #[test]
    fn query_paths() {
        let mut c = chain(4);
        let kv = c.deploy(&bb_contracts::version_kv::bundle());
        let alice = KeyPair::from_seed(3);
        c.preload_blocks(vec![
            vec![Transaction::signed(&alice, 0, kv, 0, bb_contracts::version_kv::send_value_call(1, 2, 10))],
            vec![Transaction::signed(&alice, 1, kv, 0, bb_contracts::version_kv::send_value_call(2, 3, 5))],
        ]);
        // Historical account query is unsupported natively...
        let err = c
            .query(&Query::AccountAtBlock { account: Address::from_index(1), height: 1 })
            .unwrap_err();
        assert_eq!(err, QueryError::Unsupported);
        // ...but the VersionKVStore chaincode answers it in one round trip.
        let r = c
            .query(&Query::Contract {
                address: kv,
                payload: bb_contracts::version_kv::account_range_call(2, 0, 100),
            })
            .unwrap();
        let pairs = bb_contracts::version_kv::decode_account_range(&r.data);
        assert_eq!(pairs.len(), 2);
        // Block transaction lists work like on the other platforms.
        let r = c.query(&Query::BlockTxs { height: 1 }).unwrap();
        let mut d = bb_types::Decoder::new(&r.data);
        assert_eq!(d.u32().unwrap(), 1);
    }

    /// The sharded engine must hide thread scheduling completely: same seed,
    /// serial vs forced-parallel, byte-identical chain state.
    #[test]
    fn serial_and_sharded_runs_are_byte_identical() {
        fn run() -> String {
            let mut c = chain(4);
            let addr = c.deploy(&ycsb::bundle());
            for nonce in 0..40 {
                c.submit(
                    NodeId((nonce % 4) as u32),
                    client_tx(5, nonce, addr, ycsb::write_call(nonce, b"y")),
                );
            }
            c.advance_to(SimTime::from_secs(5));
            format!("{:?}\n{:?}", c.confirmed_blocks_since(0), c.stats())
        }
        // Env knobs are process-global; fabric's tests otherwise leave them
        // untouched, so only this test mutates them (no lock needed within
        // this crate's suite).
        std::env::set_var("BB_SERIAL", "1");
        let serial = run();
        std::env::remove_var("BB_SERIAL");
        std::env::set_var("BB_SHARD_THREADS", "3");
        let sharded = run();
        std::env::remove_var("BB_SHARD_THREADS");
        assert_eq!(serial, sharded);
    }
}
