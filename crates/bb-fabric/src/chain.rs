//! The Fabric-like network world: PBFT over the simulated network with a
//! bounded, CPU-metered message channel per peer.
//!
//! Every client request and every consensus message lands in a node's
//! bounded inbox and is drained serially at `msg_process_cost` per message.
//! When the inbox is full, arrivals are *dropped* — requests and prepares
//! alike — which is the exact mechanism behind the paper's ≥16-node
//! collapse: "the consensus messages are rejected by other peers on account
//! of the message channel being full. As messages are dropped, the views
//! start to diverge and lead to unreachable consensus" (Section 4.1.2).

use crate::config::FabricConfig;
use crate::state::FabricState;
use bb_consensus::pbft::{Action, PbftConfig, PbftMsg, PbftNode};
use bb_crypto::Hash256;
use bb_merkle::merkle_root;
use bb_net::{Delivery, Network};
use bb_sim::{CpuMeter, Scheduler, SimDuration, SimRng, SimTime, World};
use bb_types::{Address, Block, BlockHeader, BlockSummary, Encoder, NodeId, Transaction, TxId};
use blockbench::connector::{
    BlockchainConnector, DirectExec, Fault, PlatformStats, Query, QueryError, QueryResult,
};
use blockbench::contract::ContractBundle;
use std::collections::{HashSet, VecDeque};

/// Events of the Fabric world.
#[derive(Debug, Clone)]
pub enum FabEvent {
    /// A client request cleared a peer's paced RPC ingress thread.
    Ingress {
        /// Receiving peer.
        to: NodeId,
        /// Encoded transaction.
        req: Vec<u8>,
    },
    /// A consensus message arrived at a peer's channel.
    Consensus {
        /// Receiving peer.
        to: NodeId,
        /// Sending peer.
        from: NodeId,
        /// The message.
        msg: PbftMsg,
    },
    /// The peer's serial message processor finished one item.
    Drain {
        /// The peer.
        node: NodeId,
        /// Pipeline generation (stale drains are ignored).
        generation: u64,
    },
    /// PBFT timer poll.
    Wake {
        /// The peer.
        node: NodeId,
    },
}

enum InboxItem {
    Message(NodeId, PbftMsg),
}

struct FabNode {
    pbft: PbftNode,
    state: FabricState,
    inbox: VecDeque<InboxItem>,
    draining: bool,
    drain_generation: u64,
    /// Executed transaction ids (dedupe across re-proposals).
    executed: HashSet<TxId>,
    /// Committed chain.
    blocks: Vec<Block>,
    receipts: Vec<Vec<(TxId, bool)>>,
    cpu: CpuMeter,
    dropped_msgs: u64,
    crashed: bool,
    wake_scheduled: Option<SimTime>,
    /// RPC ingress pacing (gRPC flow control).
    ingress_busy_until: SimTime,
    /// Execution time owed by the pipeline before the next drain.
    pipeline_penalty: SimDuration,
}

/// The Fabric-like platform.
pub struct FabricChain {
    config: FabricConfig,
    nodes: Vec<FabNode>,
    network: Network,
    sched: Scheduler<FabEvent>,
    confirmed: Vec<BlockSummary>,
    contracts: Vec<(Address, blockbench::contract::ChaincodeFactory)>,
    mem_peak: u64,
}

struct FabView<'a> {
    config: &'a FabricConfig,
    nodes: &'a mut Vec<FabNode>,
    network: &'a mut Network,
    confirmed: &'a mut Vec<BlockSummary>,
}

impl FabricChain {
    /// Build a PBFT network per `config`.
    pub fn new(config: FabricConfig) -> FabricChain {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let pbft_config = PbftConfig {
            n: config.nodes,
            batch_size: config.batch_size,
            batch_timeout: config.batch_timeout,
            view_timeout: config.view_timeout,
            ..PbftConfig::default()
        };
        let nodes = (0..config.nodes)
            .map(|i| FabNode {
                pbft: PbftNode::new(NodeId(i), pbft_config.clone()),
                state: FabricState::new(
                    config.state_buckets,
                    config.node_mem_bytes.saturating_sub(config.mem_base),
                ),
                inbox: VecDeque::new(),
                draining: false,
                drain_generation: 0,
                executed: HashSet::new(),
                blocks: Vec::new(),
                receipts: Vec::new(),
                cpu: CpuMeter::new(config.cores),
                dropped_msgs: 0,
                crashed: false,
                wake_scheduled: None,
                ingress_busy_until: SimTime::ZERO,
                pipeline_penalty: SimDuration::ZERO,
            })
            .collect();
        let network = Network::new(config.nodes, config.link.clone(), rng.fork());
        FabricChain {
            config,
            nodes,
            network,
            sched: Scheduler::new(),
            confirmed: Vec::new(),
            contracts: Vec::new(),
            mem_peak: 0,
        }
    }

    /// Consensus-message drops so far (diagnostics for the collapse).
    pub fn dropped_messages(&self) -> u64 {
        self.nodes.iter().map(|n| n.dropped_msgs).sum()
    }

    fn run(&mut self, t: SimTime) {
        let FabricChain { config, nodes, network, sched, confirmed, .. } = self;
        let mut view = FabView { config, nodes, network, confirmed };
        sched.run_until(&mut view, t);
    }
}

impl World for FabView<'_> {
    type Event = FabEvent;

    fn handle(&mut self, now: SimTime, event: FabEvent, sched: &mut Scheduler<FabEvent>) {
        match event {
            FabEvent::Ingress { to, req } => self.on_ingress(now, to, req, sched),
            FabEvent::Consensus { to, from, msg } => {
                self.enqueue(now, to, InboxItem::Message(from, msg), sched)
            }
            FabEvent::Drain { node, generation } => self.on_drain(now, node, generation, sched),
            FabEvent::Wake { node } => self.on_wake(now, node, sched),
        }
    }
}

impl FabView<'_> {
    /// A client request cleared the paced ingress thread: hand it to PBFT
    /// (which forwards to the primary) and relay it to the other peers so
    /// they can watch for liveness. Relays travel through the *bounded*
    /// consensus channel.
    fn on_ingress(&mut self, now: SimTime, to: NodeId, req: Vec<u8>, sched: &mut Scheduler<FabEvent>) {
        let node = &mut self.nodes[to.index()];
        if node.crashed {
            return;
        }
        // Ingress-side signature verification.
        node.cpu.charge(now, SimDuration::from_micros(500));
        let actions = node.pbft.on_request(req.clone(), now);
        let primary_gets_forward = actions
            .iter()
            .any(|a| matches!(a, Action::Send(_, PbftMsg::Forward(_))));
        self.dispatch(now, to, actions, sched);
        // Relay to everyone who has not seen it (skip the primary if the
        // PBFT layer already forwarded there).
        let primary = {
            let node = &self.nodes[to.index()];
            // Reconstruct the primary of the node's current view.
            let view = node.pbft.view();
            NodeId((view % self.config.nodes as u64) as u32)
        };
        for peer in (0..self.network.node_count()).map(NodeId) {
            if peer == to || (primary_gets_forward && peer == primary) {
                continue;
            }
            self.send(now, to, peer, PbftMsg::Forward(req.clone()), sched);
        }
        self.schedule_wake(now, to, sched);
    }

    /// Deliver into the bounded channel; full channel drops the item.
    fn enqueue(&mut self, now: SimTime, to: NodeId, item: InboxItem, sched: &mut Scheduler<FabEvent>) {
        let cap = self.config.channel_capacity;
        let cost = self.config.msg_process_cost;
        let node = &mut self.nodes[to.index()];
        if node.crashed {
            return;
        }
        if node.inbox.len() >= cap {
            node.dropped_msgs += 1;
            return;
        }
        node.inbox.push_back(item);
        if !node.draining {
            node.draining = true;
            node.drain_generation += 1;
            let generation = node.drain_generation;
            let penalty = std::mem::take(&mut node.pipeline_penalty);
            sched.schedule(now + cost + penalty, FabEvent::Drain { node: to, generation });
        }
    }

    fn on_drain(&mut self, now: SimTime, id: NodeId, generation: u64, sched: &mut Scheduler<FabEvent>) {
        let cost = self.config.msg_process_cost;
        let actions = {
            let node = &mut self.nodes[id.index()];
            if node.crashed || node.drain_generation != generation {
                return;
            }
            node.cpu.charge(now, cost);
            let Some(item) = node.inbox.pop_front() else {
                node.draining = false;
                return;
            };
            let InboxItem::Message(from, msg) = item;
            let actions = node.pbft.on_message(from, msg, now);
            if node.inbox.is_empty() {
                node.draining = false;
            } else {
                node.drain_generation += 1;
                let generation = node.drain_generation;
                let penalty = std::mem::take(&mut node.pipeline_penalty);
                sched.schedule(now + cost + penalty, FabEvent::Drain { node: id, generation });
            }
            actions
        };
        self.dispatch(now, id, actions, sched);
        self.schedule_wake(now, id, sched);
    }

    fn on_wake(&mut self, now: SimTime, id: NodeId, sched: &mut Scheduler<FabEvent>) {
        let actions = {
            let node = &mut self.nodes[id.index()];
            node.wake_scheduled = None;
            if node.crashed {
                return;
            }
            node.pbft.on_tick(now)
        };
        self.dispatch(now, id, actions, sched);
        self.schedule_wake(now, id, sched);
    }

    fn schedule_wake(&mut self, now: SimTime, id: NodeId, sched: &mut Scheduler<FabEvent>) {
        let node = &mut self.nodes[id.index()];
        if node.crashed {
            return;
        }
        let Some(wake) = node.pbft.next_wake() else {
            return;
        };
        let wake = wake.max(now + SimDuration::from_micros(1));
        if node.wake_scheduled.is_none_or(|t| wake < t) {
            node.wake_scheduled = Some(wake);
            sched.schedule(wake, FabEvent::Wake { node: id });
        }
    }

    fn dispatch(&mut self, now: SimTime, from: NodeId, actions: Vec<Action>, sched: &mut Scheduler<FabEvent>) {
        for action in actions {
            match action {
                Action::Send(to, msg) => self.send(now, from, to, msg, sched),
                Action::Broadcast(msg) => {
                    for to in (0..self.network.node_count()).map(NodeId) {
                        if to != from {
                            self.send(now, from, to, msg.clone(), sched);
                        }
                    }
                }
                Action::CommitBatch { seq, batch } => self.commit_batch(now, from, seq, batch),
                // A replica jumped past garbage-collected consensus history.
                // With the default horizon (1024 batches) no benchmark sweep
                // ever trims the log, so this only fires in hand-built
                // scenarios; the simulation does not model the application
                // state transfer a real deployment would run here — the
                // replica keeps serving consensus from the checkpoint on.
                Action::InstallCheckpoint { .. } => {}
            }
        }
    }

    fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: PbftMsg, sched: &mut Scheduler<FabEvent>) {
        if let Delivery::Deliver { at, corrupted } =
            self.network.send(now, from, to, msg.byte_size())
        {
            // Corrupted messages fail signature verification at the
            // receiver and are discarded (the paper's "random response"
            // fault, Section 3.3).
            if !corrupted {
                sched.schedule(at, FabEvent::Consensus { to, from, msg });
            }
        }
    }

    /// Execute a committed batch and append the block.
    fn commit_batch(&mut self, now: SimTime, at: NodeId, seq: u64, batch: Vec<Vec<u8>>) {
        let node = &mut self.nodes[at.index()];
        let height = node.blocks.len() as u64 + 1;
        let mut txs = Vec::with_capacity(batch.len());
        let mut receipts = Vec::with_capacity(batch.len());
        let mut exec_time = SimDuration::ZERO;
        for raw in &batch {
            let Ok(tx) = Transaction::decode(raw) else {
                continue;
            };
            let id = tx.id();
            if !node.executed.insert(id) {
                continue; // re-proposed duplicate
            }
            let res = node.state.invoke(&tx, height, true);
            exec_time += self.config.invoke_time(res.units, res.state_ops);
            receipts.push((id, res.success));
            txs.push(tx);
        }
        node.cpu.charge(now, exec_time);
        // Execution occupies the same event loop as message processing:
        // the next drain waits for it.
        node.pipeline_penalty += exec_time;
        let parent = node.blocks.last().map(|b| b.id()).unwrap_or(Hash256::ZERO);
        // Headers must be byte-identical across replicas: the timestamp is
        // the deterministic sequence number, not local delivery time.
        let header = BlockHeader {
            parent,
            height,
            timestamp_us: seq,
            tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
            state_root: node.state.root(),
            proposer: NodeId((seq % self.config.nodes as u64) as u32),
            difficulty: 0,
            round: seq,
        };
        let block = Block { header, txs };
        if at.index() == 0 {
            // PBFT confirms immediately: "Hyperledger confirms a block as
            // soon as it appears on the blockchain" (Section 3.2).
            self.confirmed.push(BlockSummary {
                id: block.id(),
                height,
                proposer: block.header.proposer,
                confirmed_at_us: now.as_micros(),
                txs: receipts.clone(),
            });
        }
        node.receipts.push(receipts);
        node.blocks.push(block);
    }
}

impl BlockchainConnector for FabricChain {
    fn name(&self) -> &'static str {
        "hyperledger"
    }

    fn node_count(&self) -> u32 {
        self.config.nodes
    }

    fn deploy(&mut self, bundle: &ContractBundle) -> Address {
        let addr = Address::contract(&Address::ZERO, self.contracts.len() as u64);
        for node in &mut self.nodes {
            node.state.install(addr, bundle.native);
        }
        self.contracts.push((addr, bundle.native));
        addr
    }

    fn submit(&mut self, server: NodeId, tx: Transaction) -> bool {
        let now = self.sched.now();
        let node = &mut self.nodes[server.index()];
        // The RPC ingress thread admits requests at a fixed pace; excess
        // queues here (client-visible latency), never inside consensus.
        let at = node
            .ingress_busy_until
            .max(now + self.config.rpc_delay)
            + self.config.ingress_interval;
        node.ingress_busy_until = at;
        self.sched.schedule(at, FabEvent::Ingress { to: server, req: tx.encode() });
        true
    }

    fn advance_to(&mut self, t: SimTime) {
        self.run(t);
    }

    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn confirmed_blocks_since(&mut self, height: u64) -> Vec<BlockSummary> {
        self.confirmed.iter().filter(|b| b.height > height).cloned().collect()
    }

    fn query(&mut self, q: &Query) -> Result<QueryResult, QueryError> {
        match q {
            Query::BlockTxs { height } => {
                let node = &self.nodes[0];
                let block = node
                    .blocks
                    .get((*height as usize).checked_sub(1).ok_or(QueryError::NotFound)?)
                    .ok_or(QueryError::NotFound)?;
                let mut enc = Encoder::with_capacity(block.txs.len() * 48 + 4);
                enc.put_u32(block.txs.len() as u32);
                for tx in &block.txs {
                    enc.put_raw(tx.from.as_bytes()).put_raw(tx.to.as_bytes()).put_u64(tx.value);
                }
                let cost = SimDuration::from_micros(20 + 4 * block.txs.len() as u64);
                Ok(QueryResult { data: enc.finish(), server_cost: cost })
            }
            Query::AccountAtBlock { .. } => {
                // "the system does not have APIs to query historical
                // states" (Section 3.4.2) — use the VersionKVStore
                // chaincode instead.
                Err(QueryError::Unsupported)
            }
            Query::Contract { address, payload } => {
                let node = &mut self.nodes[0];
                let kp = bb_crypto::KeyPair::from_seed(0);
                let tx = Transaction::signed(&kp, 0, *address, 0, payload.clone());
                let height = node.blocks.len() as u64;
                let res = node.state.invoke(&tx, height, false);
                if !res.success {
                    return Err(QueryError::Contract(
                        res.error.unwrap_or_else(|| "chaincode error".into()),
                    ));
                }
                Ok(QueryResult {
                    data: res.output,
                    server_cost: self.config.invoke_time(res.units, res.state_ops),
                })
            }
        }
    }

    fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                self.network.crash(node);
                self.nodes[node.index()].crashed = true;
            }
            Fault::Recover(node) => {
                self.network.recover(node);
                self.nodes[node.index()].crashed = false;
            }
            Fault::Delay(node, d) => self.network.set_extra_delay(node, d),
            Fault::Corrupt(node, p) => self.network.set_corrupt_prob(node, p),
            Fault::PartitionHalf { left } => self.network.partition_in_half(left),
            Fault::Heal => self.network.heal(),
        }
    }

    fn stats(&self) -> PlatformStats {
        let n = self.nodes.len();
        let mut disk = 0u64;
        let mut mem_peak = self.mem_peak.max(self.config.mem_base);
        let mut cpu: Vec<f64> = Vec::new();
        let mut net: Vec<f64> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            disk += node.state.store_stats().disk_bytes;
            mem_peak = mem_peak.max(self.config.mem_base + node.state.mem_peak());
            let series = node.cpu.utilisation_series();
            if series.len() > cpu.len() {
                cpu.resize(series.len(), 0.0);
            }
            for (j, v) in series.iter().enumerate() {
                cpu[j] += v / n as f64;
            }
            let tx = self.network.tx_mbps_series(NodeId(i as u32));
            if tx.len() > net.len() {
                net.resize(tx.len(), 0.0);
            }
            for (j, v) in tx.iter().enumerate() {
                net[j] += v / n as f64;
            }
        }
        PlatformStats {
            // PBFT never forks: every committed block is on the chain.
            blocks_total: self.nodes[0].blocks.len() as u64,
            blocks_main: self.nodes[0].blocks.len() as u64,
            txs_committed: self.confirmed.iter().map(|b| b.txs.len() as u64).sum(),
            disk_bytes: disk,
            mem_peak_bytes: mem_peak,
            cpu_utilisation: cpu,
            net_mbps: net,
            net_bytes: self.network.stats().bytes,
            // Fabric's Bucket-Merkle state has no Patricia node cache.
            trie_cache_hits: 0,
            trie_cache_misses: 0,
        }
    }

    fn preload_blocks(&mut self, blocks: Vec<Vec<Transaction>>) {
        for txs in blocks {
            let now = self.sched.now();
            for i in 0..self.nodes.len() {
                let node = &mut self.nodes[i];
                let height = node.blocks.len() as u64 + 1;
                let mut receipts = Vec::with_capacity(txs.len());
                for tx in &txs {
                    node.executed.insert(tx.id());
                    let res = node.state.invoke(tx, height, true);
                    receipts.push((tx.id(), res.success));
                }
                let parent = node.blocks.last().map(|b| b.id()).unwrap_or(Hash256::ZERO);
                let header = BlockHeader {
                    parent,
                    height,
                    timestamp_us: now.as_micros(),
                    tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
                    state_root: node.state.root(),
                    proposer: NodeId(0),
                    difficulty: 0,
                    round: height,
                };
                let block = Block { header, txs: txs.clone() };
                if i == 0 {
                    self.confirmed.push(BlockSummary {
                        id: block.id(),
                        height,
                        proposer: NodeId(0),
                        confirmed_at_us: now.as_micros(),
                        txs: receipts.clone(),
                    });
                }
                node.receipts.push(receipts);
                node.blocks.push(block);
            }
        }
    }

    fn execute_direct(&mut self, tx: Transaction) -> DirectExec {
        let node = &mut self.nodes[0];
        let height = node.blocks.len() as u64;
        let res = node.state.invoke(&tx, height, true);
        let modeled = self.config.mem_base + res.peak_alloc;
        self.mem_peak = self.mem_peak.max(modeled);
        DirectExec {
            success: res.success,
            duration: self.config.msg_process_cost
                + self.config.invoke_time(res.units, res.state_ops),
            gas_used: res.units,
            modeled_mem: modeled,
            output: res.output,
            error: res.error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_contracts::{donothing, ycsb};
    use bb_crypto::KeyPair;

    fn chain(nodes: u32) -> FabricChain {
        FabricChain::new(FabricConfig::with_nodes(nodes))
    }

    fn client_tx(seed: u64, nonce: u64, to: Address, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, 0, payload)
    }

    #[test]
    fn transactions_commit_within_a_batch_timeout() {
        let mut c = chain(4);
        let addr = c.deploy(&ycsb::bundle());
        for nonce in 0..10 {
            c.submit(NodeId((nonce % 4) as u32), client_tx(1, nonce, addr, ycsb::write_call(nonce, b"v")));
        }
        c.advance_to(SimTime::from_secs(3));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 10);
        // Committed fast: within ~batch timeout + a few network hops.
        let first = &c.confirmed_blocks_since(0)[0];
        assert!(first.confirmed_at_us < 1_500_000, "took {}µs", first.confirmed_at_us);
    }

    #[test]
    fn all_peers_hold_identical_chains() {
        let mut c = chain(4);
        let addr = c.deploy(&ycsb::bundle());
        for nonce in 0..50 {
            c.submit(NodeId((nonce % 4) as u32), client_tx(2, nonce, addr, ycsb::write_call(nonce, b"x")));
        }
        c.advance_to(SimTime::from_secs(5));
        let reference: Vec<Hash256> = c.nodes[0].blocks.iter().map(|b| b.id()).collect();
        assert!(!reference.is_empty());
        for i in 1..4 {
            let other: Vec<Hash256> = c.nodes[i].blocks.iter().map(|b| b.id()).collect();
            assert_eq!(other, reference, "node {i} diverged");
        }
        // State roots agree too.
        let root = c.nodes[0].state.root();
        assert!(c.nodes.iter().all(|n| n.state.root() == root));
    }

    #[test]
    fn four_of_twelve_crashes_stall_the_network() {
        let mut c = chain(12);
        let addr = c.deploy(&donothing::bundle());
        for i in 8..12 {
            c.inject(Fault::Crash(NodeId(i)));
        }
        for nonce in 0..20 {
            c.submit(NodeId(nonce as u32 % 8), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(60));
        // Quorum is n - f = 9 > 8 alive: nothing can commit (Figure 9).
        assert!(c.confirmed_blocks_since(0).is_empty());
    }

    #[test]
    fn four_of_sixteen_crashes_recover_via_view_change() {
        let mut c = chain(16);
        let addr = c.deploy(&donothing::bundle());
        // Crash the primary (node 0 is view-0 primary? no: keep node 0 as
        // observer; crash 1..5 including nothing special) — crash 4 backups.
        for i in 12..16 {
            c.inject(Fault::Crash(NodeId(i)));
        }
        for nonce in 0..20 {
            c.submit(NodeId(nonce as u32 % 8), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(60));
        // Quorum 11 ≤ 12 alive: commits happen.
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 20);
    }

    #[test]
    fn primary_crash_recovers_after_view_change() {
        let mut c = chain(4);
        let addr = c.deploy(&donothing::bundle());
        c.inject(Fault::Crash(NodeId(0)));
        for nonce in 0..5 {
            c.submit(NodeId(1 + nonce as u32 % 3), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(60));
        // Node 0 is the observer AND the crashed primary, so look at node 1.
        let committed: usize = c.nodes[1].receipts.iter().map(Vec::len).sum();
        assert_eq!(committed, 5, "view change did not recover the cluster");
        assert!(c.nodes[1].pbft.view() > 0);
    }

    #[test]
    fn even_partition_halts_without_forks() {
        let mut c = chain(8);
        let addr = c.deploy(&donothing::bundle());
        c.advance_to(SimTime::from_secs(1));
        c.inject(Fault::PartitionHalf { left: 4 });
        for nonce in 0..20 {
            c.submit(NodeId(nonce as u32 % 8), client_tx(1, nonce, addr, donothing::call()));
        }
        c.advance_to(SimTime::from_secs(30));
        // Neither half reaches quorum 6: no commits, no forks.
        assert!(c.confirmed_blocks_since(0).is_empty());
        let s = c.stats();
        assert_eq!(s.blocks_total, s.blocks_main);
        // Heal: the cluster recovers and commits everything.
        c.inject(Fault::Heal);
        c.advance_to(SimTime::from_secs(120));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 20, "requests lost across the partition");
    }

    #[test]
    fn channel_overflow_collapses_a_large_loaded_cluster() {
        // 20 servers all admitting at full ingress rate: the relay traffic
        // every node must process exceeds its pipeline, the bounded channel
        // fills, and consensus messages start dropping — the paper's >16
        // node failure mode.
        let mut c = chain(20);
        let addr = c.deploy(&ycsb::bundle());
        let mut nonce = vec![0u64; 20];
        for tick in 0..120u64 {
            c.advance_to(SimTime::from_millis(tick * 50));
            for seed in 0..20u64 {
                for _ in 0..10 {
                    let n = nonce[seed as usize];
                    nonce[seed as usize] += 1;
                    c.submit(NodeId(seed as u32), client_tx(seed, n, addr, ycsb::write_call(n, b"v")));
                }
            }
        }
        c.advance_to(SimTime::from_secs(10));
        assert!(c.dropped_messages() > 0, "bounded channel never overflowed");
        // Committed throughput is far below the admitted ~3200 tx/s.
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        let rate = committed as f64 / 10.0;
        assert!(rate < 2000.0, "no collapse: rate {rate}");
    }

    #[test]
    fn throughput_is_pipeline_bound() {
        let mut c = chain(8);
        let addr = c.deploy(&donothing::bundle());
        // Offer ~3200 tx/s over 8 servers, paced like the driver.
        let mut nonce = vec![0u64; 8];
        for tick in 0..400u64 {
            c.advance_to(SimTime::from_millis(tick * 25));
            for seed in 0..8u64 {
                for _ in 0..10 {
                    let n = nonce[seed as usize];
                    nonce[seed as usize] += 1;
                    c.submit(NodeId(seed as u32), client_tx(seed, n, addr, donothing::call()));
                }
            }
        }
        c.advance_to(SimTime::from_secs(14));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        let rate = committed as f64 / 14.0;
        // Near the paper's ~1273 tx/s peak: 8 servers × 160 tx/s admission.
        assert!(rate > 900.0 && rate < 1500.0, "rate {rate}");
    }

    #[test]
    fn query_paths() {
        let mut c = chain(4);
        let kv = c.deploy(&bb_contracts::version_kv::bundle());
        let alice = KeyPair::from_seed(3);
        c.preload_blocks(vec![
            vec![Transaction::signed(&alice, 0, kv, 0, bb_contracts::version_kv::send_value_call(1, 2, 10))],
            vec![Transaction::signed(&alice, 1, kv, 0, bb_contracts::version_kv::send_value_call(2, 3, 5))],
        ]);
        // Historical account query is unsupported natively...
        let err = c
            .query(&Query::AccountAtBlock { account: Address::from_index(1), height: 1 })
            .unwrap_err();
        assert_eq!(err, QueryError::Unsupported);
        // ...but the VersionKVStore chaincode answers it in one round trip.
        let r = c
            .query(&Query::Contract {
                address: kv,
                payload: bb_contracts::version_kv::account_range_call(2, 0, 100),
            })
            .unwrap();
        let pairs = bb_contracts::version_kv::decode_account_range(&r.data);
        assert_eq!(pairs.len(), 2);
        // Block transaction lists work like on the other platforms.
        let r = c.query(&Query::BlockTxs { height: 1 }).unwrap();
        let mut d = bb_types::Decoder::new(&r.data);
        assert_eq!(d.u32().unwrap(), 1);
    }
}
