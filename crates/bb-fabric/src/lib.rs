//! The Hyperledger Fabric v0.6-like platform.
//!
//! Stack (Sections 3.1 and 4 of the paper):
//! - **consensus**: PBFT with request batching (`batchSize = 500`), view
//!   changes, and — crucially — a *bounded per-node message channel*: every
//!   incoming request and consensus message costs CPU to process, and
//!   arrivals beyond the channel capacity are dropped. Under combined
//!   client + O(N²) consensus load this is what makes the platform "fail
//!   to scale beyond 16 nodes": dropped prepares/view-changes diverge the
//!   views exactly as the paper diagnosed from Fabric's logs;
//! - **data model**: a flat key-value namespace per chaincode,
//!   authenticated by a Bucket-Merkle tree over a RocksDB-like LSM store —
//!   an order of magnitude cheaper on disk than the trie platforms
//!   (Figure 12c), but with no historical-state API (Q2 needs the
//!   VersionKVStore chaincode);
//! - **execution**: native [`blockbench::Chaincode`] implementations
//!   running at compiled speed (the Docker stand-in), with transient
//!   allocations accounted against node RAM.

pub mod chain;
pub mod config;
pub mod state;

pub use chain::FabricChain;
pub use config::FabricConfig;
