//! Signed transactions and their identities.
//!
//! A transaction in a blockchain is what it is in a database — a sequence of
//! operations applied to state (Section 2 of the paper) — plus a signature.
//! The opaque `payload` carries a contract invocation encoded with
//! [`crate::codec`]; its interpretation belongs to the execution layer.

use crate::address::Address;
use crate::codec::{DecodeError, Decoder, Encoder};
use bb_crypto::{Hash256, KeyPair, KeyRegistry, PublicKey, Signature};

/// A transaction id: the hash of the signed transaction encoding.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TxId(pub Hash256);

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx:{}", self.0.short())
    }
}

/// A signed transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    /// Per-sender sequence number.
    pub nonce: u64,
    /// Sender account.
    pub from: Address,
    /// Target account or contract; [`Address::ZERO`] deploys a contract.
    pub to: Address,
    /// Native currency moved by this transaction.
    pub value: u64,
    /// Encoded contract invocation (opaque to the data layer).
    pub payload: Vec<u8>,
    /// Sender's public key, carried for verification.
    pub public_key: PublicKey,
    /// Signature over [`Transaction::signing_bytes`].
    pub signature: Signature,
}

impl Transaction {
    /// Build and sign a transaction in one step.
    pub fn signed(
        keypair: &KeyPair,
        nonce: u64,
        to: Address,
        value: u64,
        payload: Vec<u8>,
    ) -> Transaction {
        let from = Address::from_public_key(&keypair.public());
        let mut tx = Transaction {
            nonce,
            from,
            to,
            value,
            payload,
            public_key: keypair.public(),
            signature: Signature::from_hash(Hash256::ZERO),
        };
        tx.signature = keypair.sign(&tx.signing_bytes());
        tx
    }

    /// The bytes covered by the signature (everything except the signature).
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(96 + self.payload.len());
        e.put_u64(self.nonce)
            .put_raw(self.from.as_bytes())
            .put_raw(self.to.as_bytes())
            .put_u64(self.value)
            .put_bytes(&self.payload)
            .put_raw(&self.public_key.as_hash().0);
        e.finish()
    }

    /// Full canonical encoding, signature included.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(128 + self.payload.len());
        e.put_bytes(&self.signing_bytes()).put_raw(&self.signature.as_hash().0);
        e.finish()
    }

    /// Decode a transaction previously produced by [`Transaction::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Transaction, DecodeError> {
        let mut outer = Decoder::new(bytes);
        let body = outer.bytes()?;
        let sig = Hash256(outer.raw(32)?.try_into().expect("32 bytes"));
        outer.expect_end()?;

        let mut d = Decoder::new(body);
        let nonce = d.u64()?;
        let from = Address(d.raw(20)?.try_into().expect("20 bytes"));
        let to = Address(d.raw(20)?.try_into().expect("20 bytes"));
        let value = d.u64()?;
        let payload = d.bytes()?.to_vec();
        let pk_hash = Hash256(d.raw(32)?.try_into().expect("32 bytes"));
        d.expect_end()?;

        Ok(Transaction {
            nonce,
            from,
            to,
            value,
            payload,
            public_key: PublicKey::from_hash(pk_hash),
            signature: Signature::from_hash(sig),
        })
    }

    /// The transaction id: hash of the full encoding.
    pub fn id(&self) -> TxId {
        TxId(Hash256::digest(&self.encode()))
    }

    /// Verify the signature against the network's key registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        self.public_key.verify(&self.signing_bytes(), &self.signature, registry)
            && Address::from_public_key(&self.public_key) == self.from
    }

    /// Wire size in bytes (used by the network cost model).
    pub fn byte_size(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Is this a contract-creation transaction?
    pub fn is_deploy(&self) -> bool {
        self.to.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx(seed: u64, nonce: u64) -> Transaction {
        let kp = KeyPair::from_seed(seed);
        Transaction::signed(&kp, nonce, Address::from_index(9), 42, vec![1, 2, 3])
    }

    #[test]
    fn id_is_stable_and_content_sensitive() {
        let a = sample_tx(1, 0);
        let b = sample_tx(1, 0);
        let c = sample_tx(1, 1);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn encode_decode_round_trip() {
        let tx = sample_tx(2, 5);
        let decoded = Transaction::decode(&tx.encode()).unwrap();
        assert_eq!(decoded, tx);
        assert_eq!(decoded.id(), tx.id());
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample_tx(3, 0).encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(Transaction::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn signature_verifies_and_detects_tamper() {
        let reg = KeyRegistry::with_seed_range(8);
        let mut tx = sample_tx(4, 0);
        assert!(tx.verify(&reg));
        tx.value += 1;
        assert!(!tx.verify(&reg));
    }

    #[test]
    fn spoofed_sender_rejected() {
        let reg = KeyRegistry::with_seed_range(8);
        let mut tx = sample_tx(5, 0);
        tx.from = Address::from_index(99); // claim someone else's account
        tx.signature = KeyPair::from_seed(5).sign(&tx.signing_bytes());
        assert!(!tx.verify(&reg));
    }

    #[test]
    fn deploy_detection() {
        let kp = KeyPair::from_seed(6);
        let deploy = Transaction::signed(&kp, 0, Address::ZERO, 0, vec![0xde]);
        assert!(deploy.is_deploy());
        assert!(!sample_tx(6, 0).is_deploy());
    }

    #[test]
    fn byte_size_counts_payload() {
        let kp = KeyPair::from_seed(7);
        let small = Transaction::signed(&kp, 0, Address::from_index(1), 0, vec![0; 10]);
        let big = Transaction::signed(&kp, 0, Address::from_index(1), 0, vec![0; 500]);
        assert_eq!(big.byte_size() - small.byte_size(), 490);
    }
}
