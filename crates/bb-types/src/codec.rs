//! Deterministic binary encoding.
//!
//! Blocks and transactions are hashed over their encodings, so the encoding
//! must be canonical: fixed-width big-endian integers and length-prefixed
//! byte strings, no padding, no optionality. This plays the role LevelDB's
//! RLP plays in Ethereum — but simpler, since we control both ends.

use std::fmt;

/// Appends canonical encodings to a growable buffer.
#[derive(Default, Debug)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian u32.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian u64.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian i64 (two's complement).
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append raw bytes with no length prefix (fixed-width fields only).
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nothing written yet?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Error produced when decoding malformed or truncated bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the field was complete.
    Truncated,
    /// A length prefix exceeded the remaining input.
    BadLength,
    /// A byte string was not valid UTF-8 where a string was required.
    BadUtf8,
    /// An enum discriminant or flag byte had an unexpected value.
    BadTag(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadLength => write!(f, "length prefix exceeds input"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            DecodeError::BadTag(t) => write!(f, "unexpected tag byte {t:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reads canonical encodings back out of a byte slice.
pub struct Decoder<'a> {
    rest: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Decode from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { rest: bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.rest.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a big-endian i64.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        if self.rest.len() < len {
            return Err(DecodeError::BadLength);
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| DecodeError::BadUtf8)
    }

    /// Read `n` raw bytes (fixed-width field).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.take(n)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Assert the input is fully consumed.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::BadLength)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u32(1234).put_u64(u64::MAX).put_i64(-5);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 1234);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -5);
        d.expect_end().unwrap();
    }

    #[test]
    fn round_trip_strings_and_bytes() {
        let mut e = Encoder::new();
        e.put_bytes(b"\x00\x01\x02").put_str("smallbank").put_bytes(b"");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(d.str().unwrap(), "smallbank");
        assert_eq!(d.bytes().unwrap(), b"");
        d.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut e = Encoder::new();
        e.put_u64(9);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..4]);
        assert_eq!(d.u64().unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn bad_length_prefix_errors() {
        let mut e = Encoder::new();
        e.put_u32(1000); // claims 1000 bytes follow
        e.put_raw(b"short");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.bytes().unwrap_err(), DecodeError::BadLength);
    }

    #[test]
    fn bad_utf8_errors() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.str().unwrap_err(), DecodeError::BadUtf8);
    }

    #[test]
    fn expect_end_rejects_trailing_garbage() {
        let mut e = Encoder::new();
        e.put_u8(1).put_u8(2);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.u8().unwrap();
        assert!(d.expect_end().is_err());
        assert_eq!(d.remaining(), 1);
    }

    #[test]
    fn encoding_is_deterministic() {
        let enc = |x: u64, s: &str| {
            let mut e = Encoder::new();
            e.put_u64(x).put_str(s);
            e.finish()
        };
        assert_eq!(enc(1, "a"), enc(1, "a"));
        assert_ne!(enc(1, "a"), enc(2, "a"));
    }

    #[test]
    fn errors_display() {
        assert_eq!(DecodeError::Truncated.to_string(), "input truncated");
        assert!(DecodeError::BadTag(3).to_string().contains("0x03"));
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_scalar_sequence_round_trips(vals in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut e = Encoder::new();
            for &v in &vals {
                e.put_u64(v);
            }
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            for &v in &vals {
                prop_assert_eq!(d.u64().unwrap(), v);
            }
            prop_assert!(d.expect_end().is_ok());
        }

        #[test]
        fn any_bytes_round_trip(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..16)) {
            let mut e = Encoder::new();
            for c in &chunks {
                e.put_bytes(c);
            }
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            for c in &chunks {
                prop_assert_eq!(d.bytes().unwrap(), &c[..]);
            }
            prop_assert!(d.expect_end().is_ok());
        }
    }
}

/// Plain seeded re-expressions of the round-trip properties above, so the
/// coverage survives the default (offline, `proptest`-feature-off) test run.
#[cfg(test)]
mod seeded_props {
    use super::*;
    use bb_sim::SimRng;

    #[test]
    fn scalar_sequences_round_trip_seeded() {
        let mut rng = SimRng::seed_from_u64(0x5EED_0003);
        for _ in 0..100 {
            let vals: Vec<u64> = (0..rng.below(64)).map(|_| rng.next_u64()).collect();
            let mut e = Encoder::new();
            for &v in &vals {
                e.put_u64(v);
            }
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            for &v in &vals {
                assert_eq!(d.u64().unwrap(), v);
            }
            assert!(d.expect_end().is_ok());
        }
    }

    #[test]
    fn byte_chunks_round_trip_seeded() {
        let mut rng = SimRng::seed_from_u64(0x5EED_0004);
        for _ in 0..100 {
            let chunks: Vec<Vec<u8>> = (0..rng.below(16))
                .map(|_| {
                    let mut c = vec![0u8; rng.below(128) as usize];
                    rng.fill_bytes(&mut c);
                    c
                })
                .collect();
            let mut e = Encoder::new();
            for c in &chunks {
                e.put_bytes(c);
            }
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            for c in &chunks {
                assert_eq!(d.bytes().unwrap(), &c[..]);
            }
            assert!(d.expect_end().is_ok());
        }
    }
}
