//! Small identifier newtypes for actors in an experiment.

use std::fmt;

/// Identifies one server node (validator / miner / peer) in a network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies one benchmark client process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Index into per-client vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Identifies one account in an open-loop load population. Unlike
/// [`ClientId`] (a handful of closed-loop clients, dense, `u32`), account
/// populations reach millions of distinct identities, so the id is a `u64`
/// and everything keyed by it (keypairs, nonces) is derived or stored
/// sparsely on first touch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct AccountId(pub u64);

impl AccountId {
    /// The raw population index.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(ClientId(2).to_string(), "client2");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(ClientId(7).index(), 7);
        assert_eq!(AccountId(1 << 40).to_string(), format!("acct{}", 1u64 << 40));
        assert_eq!(AccountId(9).index(), 9);
    }
}
