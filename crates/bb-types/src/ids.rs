//! Small identifier newtypes for actors in an experiment.

use std::fmt;

/// Identifies one server node (validator / miner / peer) in a network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies one benchmark client process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Index into per-client vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(ClientId(2).to_string(), "client2");
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(ClientId(7).index(), 7);
    }
}
