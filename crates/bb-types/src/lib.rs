//! Shared chain types for BLOCKBENCH-RS.
//!
//! The three simulated platforms (Ethereum-like, Parity-like, Fabric-like)
//! exchange the same vocabulary of objects: [`Address`]es, signed
//! [`Transaction`]s, and [`Block`]s chained by header hashes, with
//! per-transaction success receipts carried in [`BlockSummary`].
//! A deterministic binary [`codec`] underpins hashing: two nodes that build
//! the same block bytes compute the same block id, which is what makes fork
//! detection and the paper's security metric (Figure 10) meaningful.

pub mod address;
pub mod block;
pub mod codec;
pub mod ids;
pub mod tx;

pub use address::Address;
pub use block::{Block, BlockHeader, BlockSummary};
pub use codec::{DecodeError, Decoder, Encoder};
pub use ids::{AccountId, ClientId, NodeId};
pub use tx::{Transaction, TxId};
