//! Blocks and block headers.
//!
//! Every platform in the paper stores an ordered chain of blocks, each
//! identified by the hash of its header and linked to its predecessor
//! (Figure 1). The header carries the roots of the transaction and state
//! trees plus consensus-specific fields: PoW difficulty (Ethereum-like),
//! authority step (Parity-like) or PBFT view (Fabric-like) — we fold the
//! latter two into `round` since at most one is meaningful per platform.

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::ids::NodeId;
use crate::tx::Transaction;
use bb_crypto::Hash256;
use std::sync::Arc;

/// Fixed header fields hashed into the block identity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    /// Identity of the parent block; [`Hash256::ZERO`] for genesis.
    pub parent: Hash256,
    /// Distance from genesis (genesis = 0).
    pub height: u64,
    /// Virtual time the proposer built this block, in microseconds.
    pub timestamp_us: u64,
    /// Merkle root over the transaction list.
    pub tx_root: Hash256,
    /// Root of the state tree after applying this block.
    pub state_root: Hash256,
    /// Node that proposed/mined/signed the block.
    pub proposer: NodeId,
    /// PoW difficulty of this block; 0 on BFT/PoA chains.
    pub difficulty: u64,
    /// Consensus round: PoA step or PBFT view; nonce domain for PoW.
    pub round: u64,
}

impl BlockHeader {
    /// Canonical encoding (what gets hashed).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(160);
        e.put_raw(&self.parent.0)
            .put_u64(self.height)
            .put_u64(self.timestamp_us)
            .put_raw(&self.tx_root.0)
            .put_raw(&self.state_root.0)
            .put_u32(self.proposer.0)
            .put_u64(self.difficulty)
            .put_u64(self.round);
        e.finish()
    }

    /// Decode a header from the canonical encoding (inverse of
    /// [`Self::encode`]); the platforms' durable block records round-trip
    /// through this at restart.
    pub fn decode_from(d: &mut Decoder) -> Result<BlockHeader, DecodeError> {
        Ok(BlockHeader {
            parent: Hash256(d.raw(32)?.try_into().expect("32 bytes")),
            height: d.u64()?,
            timestamp_us: d.u64()?,
            tx_root: Hash256(d.raw(32)?.try_into().expect("32 bytes")),
            state_root: Hash256(d.raw(32)?.try_into().expect("32 bytes")),
            proposer: NodeId(d.u32()?),
            difficulty: d.u64()?,
            round: d.u64()?,
        })
    }

    /// The block identity.
    pub fn id(&self) -> Hash256 {
        Hash256::digest(&self.encode())
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.encode().len() as u64
    }
}

/// A full block: header plus ordered transaction list.
///
/// Transactions are reference-counted: a transaction is decoded (or sealed)
/// once and the same allocation is shared by the pool, gossip, validation
/// and execution paths — cloning a `Block` bumps refcounts instead of
/// deep-copying every body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    /// Hashed header.
    pub header: BlockHeader,
    /// Transactions in execution order.
    pub txs: Vec<Arc<Transaction>>,
}

impl Block {
    /// Canonical encoding: header (fixed width) then the length-prefixed
    /// transaction list. This is what a node persists per committed block
    /// and what peers ship during catch-up sync.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(160 + 160 * self.txs.len());
        e.put_raw(&self.header.encode()).put_u32(self.txs.len() as u32);
        for tx in &self.txs {
            e.put_bytes(&tx.encode());
        }
        e.finish()
    }

    /// Decode a block (inverse of [`Self::encode`]), rejecting trailing
    /// garbage.
    pub fn decode(bytes: &[u8]) -> Result<Block, DecodeError> {
        let mut d = Decoder::new(bytes);
        let header = BlockHeader::decode_from(&mut d)?;
        let count = d.u32()? as usize;
        let mut txs = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            txs.push(Arc::new(Transaction::decode(d.bytes()?)?));
        }
        d.expect_end()?;
        Ok(Block { header, txs })
    }

    /// The block identity (hash of the header).
    pub fn id(&self) -> Hash256 {
        self.header.id()
    }

    /// Wire size: header plus every transaction (network cost model input).
    pub fn byte_size(&self) -> u64 {
        self.header.byte_size() + self.txs.iter().map(|t| t.byte_size()).sum::<u64>()
    }

    /// Number of transactions.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }
}

/// Compact description of a confirmed block handed to the driver by
/// `get_latest_block(h)` (Section 3.2): enough to match outstanding
/// transaction ids without shipping whole blocks into the stats path.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockSummary {
    /// Block identity.
    pub id: Hash256,
    /// Height on the main chain.
    pub height: u64,
    /// Proposer node.
    pub proposer: NodeId,
    /// Virtual time the block was *confirmed* (per platform's rule).
    pub confirmed_at_us: u64,
    /// Ids of transactions the block committed, with success flags.
    pub txs: Vec<(crate::tx::TxId, bool)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use bb_crypto::KeyPair;

    fn header(height: u64) -> BlockHeader {
        BlockHeader {
            parent: Hash256::digest(b"parent"),
            height,
            timestamp_us: 123,
            tx_root: Hash256::ZERO,
            state_root: Hash256::digest(b"state"),
            proposer: NodeId(1),
            difficulty: 1000,
            round: 2,
        }
    }

    #[test]
    fn id_changes_with_any_field() {
        let base = header(5);
        let variations = [
            BlockHeader { parent: Hash256::digest(b"other"), ..base.clone() },
            BlockHeader { height: 6, ..base.clone() },
            BlockHeader { timestamp_us: 124, ..base.clone() },
            BlockHeader { tx_root: Hash256::digest(b"t"), ..base.clone() },
            BlockHeader { state_root: Hash256::digest(b"s"), ..base.clone() },
            BlockHeader { proposer: NodeId(2), ..base.clone() },
            BlockHeader { difficulty: 1001, ..base.clone() },
            BlockHeader { round: 3, ..base.clone() },
        ];
        for (i, v) in variations.iter().enumerate() {
            assert_ne!(v.id(), base.id(), "field {i} not hashed");
        }
        assert_eq!(header(5).id(), base.id());
    }

    #[test]
    fn block_size_sums_txs() {
        let kp = KeyPair::from_seed(1);
        let tx = Arc::new(Transaction::signed(&kp, 0, Address::from_index(1), 1, vec![0; 64]));
        let txs = vec![Arc::clone(&tx), Arc::clone(&tx), tx];
        let block = Block { header: header(1), txs };
        assert_eq!(
            block.byte_size(),
            block.header.byte_size() + 3 * block.txs[0].byte_size()
        );
        assert_eq!(block.tx_count(), 3);
    }

    #[test]
    fn block_encoding_round_trips() {
        let kp = KeyPair::from_seed(9);
        let txs: Vec<Arc<Transaction>> = (0..3)
            .map(|n| {
                Arc::new(Transaction::signed(&kp, n, Address::from_index(2), 5, vec![n as u8; 16]))
            })
            .collect();
        let block = Block { header: header(7), txs };
        let decoded = Block::decode(&block.encode()).unwrap();
        assert_eq!(decoded, block);
        assert_eq!(decoded.id(), block.id());

        let empty = Block { header: header(0), txs: Vec::new() };
        assert_eq!(Block::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn block_decode_rejects_damage() {
        let block = Block { header: header(1), txs: Vec::new() };
        let bytes = block.encode();
        assert!(Block::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Block::decode(&trailing).is_err());
    }

    #[test]
    fn chain_linkage_detects_forks() {
        // Two children of the same parent with different contents have
        // different ids — the raw material of the Figure 10 fork metric.
        let parent = header(1).id();
        let a = BlockHeader { parent, proposer: NodeId(1), ..header(2) };
        let b = BlockHeader { parent, proposer: NodeId(2), ..header(2) };
        assert_eq!(a.parent, b.parent);
        assert_ne!(a.id(), b.id());
    }
}
