//! 20-byte account / contract addresses (the Ethereum convention, which the
//! paper's three platforms all follow for their account-based data models).

use bb_crypto::{Hash256, PublicKey};
use std::fmt;

/// A 20-byte address identifying an account or a deployed contract.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// The zero address (used for contract-creation transactions).
    pub const ZERO: Address = Address([0; 20]);

    /// Address of the account controlled by `pk`.
    pub fn from_public_key(pk: &PublicKey) -> Address {
        Address(pk.address_bytes())
    }

    /// Deterministic address for a test/workload account index.
    pub fn from_index(i: u64) -> Address {
        let h = Hash256::digest_parts(&[b"bb-acct-v1", &i.to_be_bytes()]);
        Address(h.0[12..32].try_into().expect("20 bytes"))
    }

    /// Contract address derived from deployer + nonce (CREATE semantics).
    pub fn contract(deployer: &Address, nonce: u64) -> Address {
        let h = Hash256::digest_parts(&[b"bb-contract-v1", &deployer.0, &nonce.to_be_bytes()]);
        Address(h.0[12..32].try_into().expect("20 bytes"))
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Is this the zero address?
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 20]
    }

    /// Lowercase hex.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let short: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Address(0x{short}…)")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_crypto::KeyPair;

    #[test]
    fn from_index_is_stable_and_distinct() {
        assert_eq!(Address::from_index(3), Address::from_index(3));
        assert_ne!(Address::from_index(3), Address::from_index(4));
    }

    #[test]
    fn from_public_key_matches_key_derivation() {
        let kp = KeyPair::from_seed(1);
        let a = Address::from_public_key(&kp.public());
        assert_eq!(a.0, kp.public().address_bytes());
    }

    #[test]
    fn contract_addresses_depend_on_deployer_and_nonce() {
        let d1 = Address::from_index(1);
        let d2 = Address::from_index(2);
        assert_ne!(Address::contract(&d1, 0), Address::contract(&d1, 1));
        assert_ne!(Address::contract(&d1, 0), Address::contract(&d2, 0));
        assert_eq!(Address::contract(&d1, 0), Address::contract(&d1, 0));
    }

    #[test]
    fn zero_and_hex() {
        assert!(Address::ZERO.is_zero());
        assert!(!Address::from_index(1).is_zero());
        assert_eq!(Address::ZERO.to_hex(), "0".repeat(40));
        assert_eq!(format!("{}", Address::ZERO), format!("0x{}", "0".repeat(40)));
    }
}
