//! Optimistic intra-block parallel execution, shared by all three platforms.
//!
//! The paper's macro benchmarks saturate far below hardware limits partly
//! because every platform executes a block's transactions serially on one
//! core. This crate provides the platform-agnostic substrate for an
//! optimistic (OCC-style) block executor:
//!
//! 1. **Speculate**: every transaction of a sealed block runs against the
//!    immutable pre-state snapshot, recording its read set, write set and
//!    result ([`speculate`] fans the work out over a thread pool).
//! 2. **Detect + commit** in canonical order: a transaction whose reads
//!    don't intersect the writes committed before it ([`KeySet`]) is a
//!    *winner* — its buffered writes apply verbatim. A *loser* re-executes
//!    serially at its canonical slot, exactly as the classic serial loop
//!    would have run it.
//!
//! Because speculation is deterministic given the pre-state and the
//! conflict check runs in canonical order over per-transaction sets that
//! don't depend on scheduling, the committed state, receipts and every
//! platform counter are byte-identical between the serial and parallel
//! schedules — the same contract `ShardedEngine` makes for cross-node
//! parallelism (DESIGN.md §5 and §8).
//!
//! `BB_SERIAL_EXEC=1` forces inline speculation (one thread) and
//! `BB_EXEC_THREADS=N` pins the pool size, mirroring the `BB_SERIAL` /
//! `BB_SHARD_THREADS` contract of the sharded engine.
//!
//! Simulated time is *modeled*, not measured: [`model_block`] charges the
//! serial sum (so existing figures are unchanged) and separately computes a
//! deterministic parallel makespan over [`MODEL_LANES`] lanes, from which
//! the `exec_parallel_speedup` statistic derives on any host, including a
//! single-core CI container.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Lanes assumed by the deterministic execution-time model. Fixed (rather
/// than `available_parallelism`) so the modeled speedup is a property of
/// the workload, not of the machine the simulation happens to run on.
pub const MODEL_LANES: usize = 4;

/// Worker threads the speculative executor should use, resolved from the
/// environment exactly like the sharded engine's helper count:
/// `BB_SERIAL_EXEC=1` → 1 (inline), `BB_EXEC_THREADS=N` → N, otherwise
/// every available core.
pub fn resolved_threads() -> usize {
    if std::env::var("BB_SERIAL_EXEC").ok().as_deref() == Some("1") {
        return 1;
    }
    if let Some(n) = std::env::var("BB_EXEC_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f(0..n)` on `threads` workers and return the results in index
/// order. With `threads <= 1` the closure runs inline — the serial and
/// parallel schedules call `f` the exact same number of times with the
/// same arguments, so any side effects behind interior locks stay
/// mode-identical in total.
pub fn speculate<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot poisoned").expect("slot filled"))
        .collect()
}

/// The set of (logical) keys written by transactions already committed in
/// this block — the first-writer-wins conflict oracle.
#[derive(Debug, Default)]
pub struct KeySet {
    keys: BTreeSet<Vec<u8>>,
}

impl KeySet {
    /// Empty set (start of a block).
    pub fn new() -> KeySet {
        KeySet::default()
    }

    /// Does any of `reads` hit a committed write? If so the reader
    /// speculated against stale state and must re-execute.
    pub fn conflicts(&self, reads: &[Vec<u8>]) -> bool {
        reads.iter().any(|k| self.keys.contains(k))
    }

    /// Record a committed transaction's write keys.
    pub fn record<I: IntoIterator<Item = Vec<u8>>>(&mut self, writes: I) {
        self.keys.extend(writes);
    }

    /// Number of distinct keys written so far.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no write has been recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Deterministic greedy makespan of `costs_us` over [`MODEL_LANES`] lanes:
/// each cost (in canonical order) lands on the least-loaded lane, ties to
/// the lowest index. This is the modeled wall-clock of the speculation
/// phase.
pub fn modeled_span(costs_us: &[u64]) -> u64 {
    let mut lanes = [0u64; MODEL_LANES];
    for &c in costs_us {
        let min = (0..MODEL_LANES).min_by_key(|&i| lanes[i]).expect("lanes non-empty");
        lanes[min] += c;
    }
    lanes.into_iter().max().unwrap_or(0)
}

/// Modeled execution time of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockCost {
    /// What the classic serial loop charges (and what the simulation still
    /// charges — the model must not perturb existing figures).
    pub serial_us: u64,
    /// Speculation makespan plus the serial re-execution tail, capped at
    /// the serial cost: an optimistic executor can always fall back to the
    /// serial schedule, so the modeled speedup never drops below 1.0.
    pub modeled_us: u64,
}

/// Combine per-transaction costs into a [`BlockCost`]: `spec_us` holds the
/// speculated cost of every transaction (the parallel phase), `winner_us`
/// the summed serial charge of the clean transactions, and
/// `loser_reexec_us` the serial re-execution cost of each conflicted one.
pub fn model_block(spec_us: &[u64], winner_us: u64, loser_reexec_us: &[u64]) -> BlockCost {
    let tail: u64 = loser_reexec_us.iter().sum();
    let serial = winner_us + tail;
    let modeled = (modeled_span(spec_us) + tail).min(serial);
    BlockCost { serial_us: serial, modeled_us: modeled }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculate_inline_matches_threaded() {
        let inline = speculate(100, 1, |i| i * i);
        let threaded = speculate(100, 4, |i| i * i);
        assert_eq!(inline, threaded);
        assert_eq!(inline[7], 49);
        assert_eq!(speculate(0, 4, |i| i).len(), 0);
    }

    #[test]
    fn speculate_runs_side_effects_once_per_index() {
        let count = AtomicUsize::new(0);
        let out = speculate(37, 3, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 37);
        assert_eq!(out, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn keyset_detects_first_writer_wins() {
        let mut set = KeySet::new();
        assert!(!set.conflicts(&[b"a".to_vec()]));
        set.record([b"a".to_vec(), b"b".to_vec()]);
        assert!(set.conflicts(&[b"x".to_vec(), b"a".to_vec()]));
        assert!(!set.conflicts(&[b"x".to_vec()]));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn span_is_greedy_over_four_lanes() {
        // Four equal costs → one per lane.
        assert_eq!(modeled_span(&[10, 10, 10, 10]), 10);
        // Eight equal costs → two per lane.
        assert_eq!(modeled_span(&[10; 8]), 20);
        // One dominant cost bounds the span.
        assert_eq!(modeled_span(&[100, 1, 1, 1, 1]), 100);
        assert_eq!(modeled_span(&[]), 0);
    }

    #[test]
    fn model_never_exceeds_serial() {
        // Conflict-free: span 25 (100/4) beats serial 100.
        let free = model_block(&[10; 10], 100, &[]);
        assert_eq!(free.serial_us, 100);
        assert_eq!(free.modeled_us, 30); // ceil by greedy: 3 lanes get 3 txs? 10*3=30
        assert!(free.modeled_us < free.serial_us);
        // Fully conflicted: every tx re-executes; the cap keeps the model
        // at the serial cost instead of span + tail.
        let all = model_block(&[10; 10], 0, &[10; 10]);
        assert_eq!(all.serial_us, 100);
        assert_eq!(all.modeled_us, 100);
    }

    #[test]
    fn env_thread_resolution_contract() {
        // Can't touch process env safely in parallel tests; just pin the
        // no-env default to available parallelism.
        let n = resolved_threads();
        assert!(n >= 1);
    }
}
