//! The YCSB key-value workload (Section 3.4.1): "It preloads each store
//! with a number of records, and supports requests with different ratios of
//! read and write operations."

use crate::common::{ClientBank, Population, Preloader};
use bb_contracts::ycsb;
use bb_sim::rng::Zipfian;
use bb_sim::SimRng;
use bb_types::{AccountId, Address, ClientId, Transaction};
use blockbench::connector::BlockchainConnector;
use blockbench::driver::WorkloadConnector;

/// YCSB parameters.
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Records preloaded and addressed.
    pub record_count: u64,
    /// Preloaded records (0 = skip preload for fast setup).
    pub preload_records: u64,
    /// Value size in bytes (YCSB default-ish 100).
    pub value_size: usize,
    /// Fraction of reads (writes are the rest).
    pub read_ratio: f64,
    /// Zipfian skew (0.99 = YCSB's default "zipfian"); 0.0 ≈ uniform.
    pub zipf_theta: f64,
    /// Max concurrent clients to provision keys for.
    pub clients: u32,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            record_count: 10_000,
            preload_records: 1_000,
            value_size: 100,
            read_ratio: 0.5,
            zipf_theta: 0.99,
            clients: 32,
            seed: 7,
        }
    }
}

/// The YCSB workload connector.
pub struct YcsbWorkload {
    config: YcsbConfig,
    bank: ClientBank,
    population: Population,
    rng: SimRng,
    zipf: Zipfian,
    contract: Option<Address>,
}

impl YcsbWorkload {
    /// Build from config.
    pub fn new(config: YcsbConfig) -> YcsbWorkload {
        let rng = SimRng::seed_from_u64(config.seed);
        let zipf = Zipfian::new(config.record_count, config.zipf_theta);
        YcsbWorkload {
            bank: ClientBank::new(config.clients),
            population: Population::default(),
            rng,
            zipf,
            contract: None,
            config,
        }
    }

    fn value(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.config.value_size];
        self.rng.fill_bytes(&mut v);
        v
    }

    /// One read-or-write call payload (shared by both signing paths).
    fn payload(&mut self) -> Vec<u8> {
        let key = self.zipf.sample(&mut self.rng);
        if self.rng.unit() < self.config.read_ratio {
            ycsb::read_call(key)
        } else {
            let v = self.value();
            ycsb::write_call(key, &v)
        }
    }

    /// Open-loop population state (active set size, key-cache counters).
    pub fn population(&self) -> &Population {
        &self.population
    }
}

impl WorkloadConnector for YcsbWorkload {
    fn name(&self) -> &'static str {
        "ycsb"
    }

    fn setup(&mut self, chain: &mut dyn BlockchainConnector) {
        let contract = chain.deploy(&ycsb::bundle());
        self.contract = Some(contract);
        if self.config.preload_records > 0 {
            let payloads: Vec<Vec<u8>> = (0..self.config.preload_records)
                .map(|k| {
                    let mut v = vec![0u8; self.config.value_size];
                    self.rng.fill_bytes(&mut v);
                    ycsb::write_call(k, &v)
                })
                .collect();
            Preloader::new(0).preload_calls(chain, contract, payloads, 500);
        }
    }

    fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let payload = self.payload();
        self.bank.sign(client, contract, 0, payload)
    }

    fn on_rejected(&mut self, client: ClientId) {
        self.bank.rollback(client);
    }

    fn next_transaction_keyed(&mut self, account: AccountId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let payload = self.payload();
        self.population.sign(account, contract, 0, payload)
    }

    fn on_rejected_keyed(&mut self, account: AccountId) {
        self.population.rollback(account);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_fabric::{FabricChain, FabricConfig};
    use blockbench::driver::{run_workload, DriverConfig};
    use bb_sim::SimDuration;

    #[test]
    fn generates_mixed_read_write_traffic() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            read_ratio: 0.5,
            preload_records: 0,
            ..YcsbConfig::default()
        });
        w.contract = Some(Address::from_index(1));
        let mut reads = 0;
        let mut writes = 0;
        for i in 0..400 {
            let tx = w.next_transaction(ClientId(i % 4));
            match tx.payload[0] {
                x if x == ycsb::M_READ => reads += 1,
                x if x == ycsb::M_WRITE => writes += 1,
                other => panic!("unexpected method {other}"),
            }
        }
        assert!((150..250).contains(&reads), "reads {reads}");
        assert!((150..250).contains(&writes), "writes {writes}");
    }

    #[test]
    fn zipfian_skews_keys() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            record_count: 1000,
            preload_records: 0,
            zipf_theta: 0.99,
            ..YcsbConfig::default()
        });
        w.contract = Some(Address::from_index(1));
        let mut hot = 0;
        for _ in 0..1000 {
            let tx = w.next_transaction(ClientId(0));
            let key = u64::from_le_bytes(tx.payload[1..9].try_into().unwrap());
            if key < 10 {
                hot += 1;
            }
        }
        assert!(hot > 300, "hottest 1% of keys drew only {hot}/1000");
    }

    #[test]
    fn end_to_end_on_fabric() {
        let mut chain = FabricChain::new(FabricConfig::with_nodes(4));
        let mut w = YcsbWorkload::new(YcsbConfig {
            preload_records: 100,
            ..YcsbConfig::default()
        });
        let stats = run_workload(
            &mut chain,
            &mut w,
            &DriverConfig {
                clients: 4,
                rate_per_client: 50.0,
                duration: SimDuration::from_secs(10),
                poll_interval: SimDuration::from_millis(250),
                drain: SimDuration::from_secs(5),
            },
        );
        assert!(stats.submitted > 1900, "submitted {}", stats.submitted);
        // Unsaturated: everything commits.
        assert!(
            stats.committed as f64 > 0.9 * stats.submitted as f64,
            "{}",
            stats.summary_line()
        );
        assert_eq!(stats.aborted, 0);
        assert!(stats.mean_latency().unwrap() < 2.0);
    }
}
