//! The Analytics micro-benchmark (Sections 3.4.2 and 4.2.2, Figure 13a/b):
//! OLAP-style queries over chain history.
//!
//! Setup preloads accounts and `blocks × txs_per_block` random transfers.
//! On the EVM-like platforms the transfers are plain value movements and
//! the queries go through per-block RPCs; on Fabric they route through the
//! VersionKVStore chaincode (Figure 20), because "the system does not have
//! APIs to query historical states" — Q2 then needs only **one** RPC round
//! trip, the paper's 10× win.

use bb_contracts::version_kv;
use bb_crypto::KeyPair;
use bb_sim::{SimDuration, SimRng};
use bb_types::{Address, Decoder, Transaction};
use blockbench::connector::{BlockchainConnector, Query};

/// Client-observed RPC round-trip cost per request (the Figure 13
/// bottleneck is the *number* of round trips).
pub const RPC_ROUND_TRIP: SimDuration = SimDuration(800);

/// Analytics preload + query runner.
pub struct AnalyticsRunner {
    /// Accounts participating in transfers.
    pub accounts: u64,
    /// Preloaded block count.
    pub blocks: u64,
    /// Transfers per block (the paper used 3 on average).
    pub txs_per_block: u64,
    rng: SimRng,
    /// Fabric's VersionKVStore address, when applicable.
    kv_contract: Option<Address>,
    preloaded: bool,
    first_block: u64,
}

/// A measured query outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Client-observed latency (round trips + server time).
    pub latency: SimDuration,
    /// RPC requests issued.
    pub round_trips: u64,
    /// The computed statistic (Q1: total value; Q2: largest change).
    pub answer: i64,
}

impl AnalyticsRunner {
    /// Runner with the given history shape.
    pub fn new(accounts: u64, blocks: u64, txs_per_block: u64, seed: u64) -> AnalyticsRunner {
        AnalyticsRunner {
            accounts,
            blocks,
            txs_per_block,
            rng: SimRng::seed_from_u64(seed),
            kv_contract: None,
            preloaded: false,
            first_block: 0,
        }
    }

    fn is_fabric(chain: &dyn BlockchainConnector) -> bool {
        chain.name() == "hyperledger"
    }

    /// Preload the chain with the transfer history.
    pub fn preload(&mut self, chain: &mut dyn BlockchainConnector) {
        assert!(!self.preloaded, "preload once");
        self.preloaded = true;
        let fabric = Self::is_fabric(chain);
        if fabric {
            self.kv_contract = Some(chain.deploy(&version_kv::bundle()));
        }
        // One signing key per account lane so nonces stay per-sender.
        let keys: Vec<KeyPair> = (0..self.accounts).map(KeyPair::from_seed).collect();
        let mut nonces = vec![0u64; self.accounts as usize];
        let mut blocks = Vec::with_capacity(self.blocks as usize);
        for _ in 0..self.blocks {
            let mut txs = Vec::with_capacity(self.txs_per_block as usize);
            for _ in 0..self.txs_per_block {
                let from = self.rng.below(self.accounts);
                let to = self.rng.below(self.accounts);
                let value = 1 + self.rng.below(1000);
                let tx = if let Some(kv) = self.kv_contract {
                    let t = Transaction::signed(
                        &keys[from as usize],
                        nonces[from as usize],
                        kv,
                        0,
                        version_kv::send_value_call(from, to, value as i64),
                    );
                    nonces[from as usize] += 1;
                    t
                } else {
                    let to_addr = Address::from_public_key(&keys[to as usize].public());
                    let t = Transaction::signed(
                        &keys[from as usize],
                        nonces[from as usize],
                        to_addr,
                        value,
                        Vec::new(),
                    );
                    nonces[from as usize] += 1;
                    t
                };
                txs.push(tx);
            }
            blocks.push(txs);
        }
        self.first_block = chain.stats().blocks_main + 1;
        chain.preload_blocks(blocks);
    }

    /// Q1: "Compute the total transaction values committed between block i
    /// and block j" — one block-content RPC per block on every platform.
    pub fn q1(&self, chain: &mut dyn BlockchainConnector, span: u64) -> QueryOutcome {
        let mut latency = SimDuration::ZERO;
        let mut total = 0i64;
        let mut round_trips = 0u64;
        let fabric_kv = self.kv_contract;
        for h in self.first_block..self.first_block + span.min(self.blocks) {
            round_trips += 1;
            latency += RPC_ROUND_TRIP;
            if let Some(kv) = fabric_kv {
                // Fabric's tx values live in chaincode state: one chaincode
                // query per block (same round-trip count as the others).
                let r = chain
                    .query(&Query::Contract {
                        address: kv,
                        payload: version_kv::block_txs_call(h),
                    })
                    .expect("preloaded block");
                latency += r.server_cost;
                for (_, _, v) in version_kv::decode_block_txs(&r.data) {
                    total += v;
                }
            } else {
                let r = chain.query(&Query::BlockTxs { height: h }).expect("preloaded block");
                latency += r.server_cost;
                let mut d = Decoder::new(&r.data);
                let n = d.u32().expect("well-formed reply");
                for _ in 0..n {
                    let _from = d.raw(20).expect("from");
                    let _to = d.raw(20).expect("to");
                    total += d.u64().expect("value") as i64;
                }
            }
        }
        QueryOutcome { latency, round_trips, answer: total }
    }

    /// Q2: "Compute the largest transaction value involving a given
    /// state (account) between block i and block j". EVM-likes: one
    /// `getBalance(account, block)` RPC **per block**; Fabric: **one**
    /// VersionKVStore chaincode call (Appendix C).
    pub fn q2(&self, chain: &mut dyn BlockchainConnector, account: u64, span: u64) -> QueryOutcome {
        let span = span.min(self.blocks);
        let from = self.first_block;
        let to = self.first_block + span;
        if let Some(kv) = self.kv_contract {
            // Fetch the full history up to `to` so the balance *at* the
            // range start is known (the baseline), then collapse versions
            // to the last balance per commit block — the same per-block
            // granularity getBalance(acct, block) gives the EVM platforms.
            let r = chain
                .query(&Query::Contract {
                    address: kv,
                    payload: version_kv::account_range_call(account, 0, to),
                })
                .expect("chaincode installed");
            let pairs = version_kv::decode_account_range(&r.data);
            let mut per_block: Vec<(u64, i64)> = Vec::new();
            for &(balance, commit) in pairs.iter().rev() {
                match per_block.last_mut() {
                    Some((c, b)) if *c == commit => *b = balance,
                    _ => per_block.push((commit, balance)),
                }
            }
            let mut largest = 0i64;
            let mut prev_balance = per_block
                .iter()
                .take_while(|&&(c, _)| c <= from)
                .last()
                .map(|&(_, b)| b)
                .unwrap_or(0);
            for &(commit, balance) in per_block.iter().filter(|&&(c, _)| c > from) {
                largest = largest.max((balance - prev_balance).abs());
                prev_balance = balance;
                let _ = commit;
            }
            return QueryOutcome {
                latency: RPC_ROUND_TRIP + r.server_cost,
                round_trips: 1,
                answer: largest,
            };
        }
        // EVM-likes: walk the range, one balance RPC per block.
        let addr = Address::from_public_key(&KeyPair::from_seed(account).public());
        let mut latency = SimDuration::ZERO;
        let mut round_trips = 0u64;
        let mut largest = 0i64;
        let mut prev: Option<i64> = None;
        for h in from..to {
            round_trips += 1;
            latency += RPC_ROUND_TRIP;
            let r = chain
                .query(&Query::AccountAtBlock { account: addr, height: h })
                .expect("preloaded block");
            latency += r.server_cost;
            let balance = i64::from_le_bytes(r.data.try_into().expect("8-byte balance"));
            if let Some(p) = prev {
                largest = largest.max((balance - p).abs());
            }
            prev = Some(balance);
        }
        QueryOutcome { latency, round_trips, answer: largest }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_ethereum::{EthConfig, EthereumChain};
    use bb_fabric::{FabricChain, FabricConfig};
    use bb_parity::{ParityChain, ParityConfig};

    #[test]
    fn q1_totals_agree_across_platforms() {
        // Same seed → same preloaded history → same Q1 answer everywhere.
        let mut eth = EthereumChain::new(EthConfig::with_nodes(2));
        let mut par = ParityChain::new(ParityConfig::with_nodes(2));
        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let answers: Vec<i64> = [
            &mut eth as &mut dyn BlockchainConnector,
            &mut par as &mut dyn BlockchainConnector,
            &mut fab as &mut dyn BlockchainConnector,
        ]
        .into_iter()
        .map(|chain| {
            let mut a = AnalyticsRunner::new(64, 50, 3, 99);
            a.preload(chain);
            a.q1(chain, 50).answer
        })
        .collect();
        assert!(answers[0] > 0);
        assert_eq!(answers[0], answers[1]);
        assert_eq!(answers[0], answers[2]);
    }

    #[test]
    fn q2_round_trip_counts_match_the_paper() {
        let mut eth = EthereumChain::new(EthConfig::with_nodes(2));
        let mut a = AnalyticsRunner::new(32, 40, 3, 5);
        a.preload(&mut eth);
        let r = a.q2(&mut eth, 3, 40);
        assert_eq!(r.round_trips, 40, "one RPC per block on Ethereum");

        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let mut a = AnalyticsRunner::new(32, 40, 3, 5);
        a.preload(&mut fab);
        let rf = a.q2(&mut fab, 3, 40);
        assert_eq!(rf.round_trips, 1, "one chaincode call on Fabric");
        // The 10× latency gap follows from the round trips.
        assert!(
            r.latency.as_secs_f64() > 5.0 * rf.latency.as_secs_f64(),
            "eth {} vs fabric {}",
            r.latency,
            rf.latency
        );
    }

    #[test]
    fn q1_latency_scales_with_span() {
        let mut par = ParityChain::new(ParityConfig::with_nodes(2));
        let mut a = AnalyticsRunner::new(32, 100, 3, 5);
        a.preload(&mut par);
        let short = a.q1(&mut par, 10).latency;
        let long = a.q1(&mut par, 100).latency;
        assert!(long.as_secs_f64() > 8.0 * short.as_secs_f64());
    }

    #[test]
    fn q2_answers_are_consistent_between_eth_and_fabric() {
        // The largest balance change per block range must agree: both
        // platforms saw the same transfers.
        let mut eth = EthereumChain::new(EthConfig::with_nodes(2));
        let mut a1 = AnalyticsRunner::new(16, 30, 3, 123);
        a1.preload(&mut eth);
        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let mut a2 = AnalyticsRunner::new(16, 30, 3, 123);
        a2.preload(&mut fab);
        for account in [0u64, 3, 7] {
            let e = a1.q2(&mut eth, account, 30).answer;
            let f = a2.q2(&mut fab, account, 30).answer;
            assert_eq!(e, f, "account {account}");
        }
    }
}
