//! Workload connectors and micro-benchmark runners (Section 3.4).
//!
//! **Macro workloads** (application layer, Figures 5–10 and 13c), all
//! implementing [`blockbench::WorkloadConnector`]:
//! - [`ycsb`]: the YCSB key-value workload — Zipfian/uniform key choice,
//!   configurable read/write mix, 100-byte values;
//! - [`smallbank`]: the OLTP banking mix (SendPayment, DepositChecking,
//!   TransactSavings, WriteCheck, Amalgamate);
//! - [`realistic`]: the three real Ethereum contracts — EtherId, Doubler
//!   and WavesPresale;
//! - [`donothing`]: consensus-only no-ops.
//!
//! **Micro runners** (per-layer, Figures 11–13):
//! - [`cpuheavy`]: execution layer — quicksort timing + peak memory;
//! - [`ioheavy`]: data layer — bulk random writes/reads + disk usage;
//! - [`analytics`]: OLAP over chain history — Q1 (total value in a block
//!   range) and Q2 (largest balance change of an account), including the
//!   platform-specific plumbing (JSON-RPC style per-block queries vs. the
//!   VersionKVStore chaincode).

pub mod analytics;
pub mod common;
pub mod cpuheavy;
pub mod donothing;
pub mod ioheavy;
pub mod realistic;
pub mod smallbank;
pub mod ycsb;

pub use analytics::AnalyticsRunner;
pub use common::{Population, POPULATION_SEED_BASE};
pub use cpuheavy::CpuHeavyRunner;
pub use donothing::DoNothingWorkload;
pub use ioheavy::IoHeavyRunner;
pub use realistic::{DoublerWorkload, EtherIdWorkload, WavesWorkload};
pub use smallbank::SmallbankWorkload;
pub use ycsb::YcsbWorkload;
