//! The DoNothing workload (Section 3.4.2): consensus-layer isolation. The
//! difference between this and YCSB/Smallbank throughput is "indicative of
//! the cost of \[the\] consensus protocol versus the rest of the software
//! stack" (Figure 13c).

use crate::common::{ClientBank, Population};
use bb_contracts::donothing;
use bb_types::{AccountId, Address, ClientId, Transaction};
use blockbench::connector::BlockchainConnector;
use blockbench::driver::WorkloadConnector;

/// The DoNothing workload connector.
pub struct DoNothingWorkload {
    bank: ClientBank,
    population: Population,
    contract: Option<Address>,
}

impl DoNothingWorkload {
    /// Provision for up to `clients` clients.
    pub fn new(clients: u32) -> DoNothingWorkload {
        DoNothingWorkload {
            bank: ClientBank::new(clients),
            population: Population::default(),
            contract: None,
        }
    }

    /// Open-loop population state (active set size, key-cache counters).
    pub fn population(&self) -> &Population {
        &self.population
    }
}

impl Default for DoNothingWorkload {
    fn default() -> Self {
        DoNothingWorkload::new(32)
    }
}

impl WorkloadConnector for DoNothingWorkload {
    fn name(&self) -> &'static str {
        "donothing"
    }

    fn setup(&mut self, chain: &mut dyn BlockchainConnector) {
        self.contract = Some(chain.deploy(&donothing::bundle()));
    }

    fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        self.bank.sign(client, contract, 0, donothing::call())
    }

    fn on_rejected(&mut self, client: ClientId) {
        self.bank.rollback(client);
    }

    fn next_transaction_keyed(&mut self, account: AccountId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        self.population.sign(account, contract, 0, donothing::call())
    }

    fn on_rejected_keyed(&mut self, account: AccountId) {
        self.population.rollback(account);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_parity::{ParityChain, ParityConfig};
    use bb_sim::SimDuration;
    use blockbench::driver::{run_workload, DriverConfig};

    #[test]
    fn parity_is_signing_bound_not_consensus_bound() {
        // The paper's Figure 13c: DoNothing ≈ YCSB ≈ Smallbank on Parity,
        // because the bottleneck is transaction signing.
        let mut chain = ParityChain::new(ParityConfig::with_nodes(8));
        let mut w = DoNothingWorkload::new(8);
        let stats = run_workload(
            &mut chain,
            &mut w,
            &DriverConfig {
                clients: 8,
                rate_per_client: 64.0,
                duration: SimDuration::from_secs(30),
                poll_interval: SimDuration::from_millis(500),
                drain: SimDuration::from_secs(10),
            },
        );
        let tps = stats.throughput_tps();
        assert!((30.0..60.0).contains(&tps), "parity DoNothing tps {tps}");
    }
}
