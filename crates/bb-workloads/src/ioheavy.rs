//! The IOHeavy micro-benchmark runner (Section 4.2.2, Figure 12): bulk
//! random writes and reads of 20-byte-key / 100-byte-value tuples against a
//! one-server deployment, reporting operation throughput and disk usage —
//! or the out-of-memory failure (Parity's in-memory state cap).

use crate::common::Preloader;
use bb_contracts::ioheavy;
use blockbench::connector::BlockchainConnector;

/// One IOHeavy measurement.
#[derive(Debug, Clone)]
pub struct IoHeavyResult {
    /// Tuples targeted.
    pub tuples: u64,
    /// Write throughput (tuples per simulated second); `None` on failure.
    pub write_tps: Option<f64>,
    /// Read throughput; `None` on failure.
    pub read_tps: Option<f64>,
    /// Bytes on disk after the writes.
    pub disk_bytes: u64,
    /// Failure cause (Parity's out-of-space at ~3.2M states).
    pub error: Option<String>,
}

/// Runs IOHeavy sweeps against any platform.
pub struct IoHeavyRunner {
    preloader: Preloader,
    contract: Option<bb_types::Address>,
    batch: u64,
}

impl Default for IoHeavyRunner {
    fn default() -> Self {
        Self::new(10_000)
    }
}

impl IoHeavyRunner {
    /// Runner issuing `batch` tuples per transaction.
    pub fn new(batch: u64) -> IoHeavyRunner {
        IoHeavyRunner { preloader: Preloader::new(5), contract: None, batch }
    }

    /// Write then read `tuples` tuples; report throughputs and disk usage.
    pub fn run(&mut self, chain: &mut dyn BlockchainConnector, tuples: u64) -> IoHeavyResult {
        let contract = *self
            .contract
            .get_or_insert_with(|| chain.deploy(&ioheavy::bundle()));
        let mut write_time = 0.0;
        let mut start = 0u64;
        while start < tuples {
            let count = self.batch.min(tuples - start);
            let tx = self.preloader.sign(contract, 0, ioheavy::write_call(start, count));
            let res = chain.execute_direct(tx);
            if !res.success {
                return IoHeavyResult {
                    tuples,
                    write_tps: None,
                    read_tps: None,
                    disk_bytes: chain.stats().disk_bytes,
                    error: res.error,
                };
            }
            write_time += res.duration.as_secs_f64();
            start += count;
        }
        let disk_bytes = chain.stats().disk_bytes;
        let mut read_time = 0.0;
        let mut start = 0u64;
        while start < tuples {
            let count = self.batch.min(tuples - start);
            let tx = self.preloader.sign(contract, 0, ioheavy::read_call(start, count));
            let res = chain.execute_direct(tx);
            if !res.success {
                return IoHeavyResult {
                    tuples,
                    write_tps: Some(tuples as f64 / write_time),
                    read_tps: None,
                    disk_bytes,
                    error: res.error,
                };
            }
            // All tuples must be found.
            let found = i64::from_le_bytes(res.output.try_into().unwrap_or([0; 8]));
            assert_eq!(found as u64, count, "read-back miss at offset {start}");
            read_time += res.duration.as_secs_f64();
            start += count;
        }
        IoHeavyResult {
            tuples,
            write_tps: Some(tuples as f64 / write_time),
            read_tps: Some(tuples as f64 / read_time),
            disk_bytes,
            error: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_ethereum::{EthConfig, EthereumChain};
    use bb_fabric::{FabricChain, FabricConfig};
    use bb_parity::{ParityChain, ParityConfig};

    #[test]
    fn fabric_beats_ethereum_on_io_and_disk() {
        let tuples = 5_000;
        let mut eth = EthereumChain::new(EthConfig::with_nodes(1));
        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let re = IoHeavyRunner::new(1000).run(&mut eth, tuples);
        let rf = IoHeavyRunner::new(1000).run(&mut fab, tuples);
        let (we, wf) = (re.write_tps.unwrap(), rf.write_tps.unwrap());
        assert!(wf > we, "fabric writes {wf} vs ethereum {we}");
        // Trie platforms burn an order of magnitude more disk (Figure 12c).
        // Ethereum runs one node here vs Fabric's four: compare per node.
        let eth_disk = re.disk_bytes;
        let fab_disk_per_node = rf.disk_bytes / 4;
        assert!(
            eth_disk > 4 * fab_disk_per_node,
            "eth {eth_disk} vs fabric/node {fab_disk_per_node}"
        );
    }

    #[test]
    fn parity_is_fast_until_the_memory_wall() {
        let mut config = ParityConfig::with_nodes(1);
        // Shrink the state budget so the wall is test-sized.
        config.node_mem_bytes = config.costs.mem_base + (24 << 20);
        let mut par = ParityChain::new(config);
        let mut runner = IoHeavyRunner::new(1000);
        let ok = runner.run(&mut par, 2_000);
        assert!(ok.error.is_none(), "{:?}", ok.error);
        assert!(ok.write_tps.unwrap() > 0.0);
        // Push on: the capped in-memory state blows up — the Figure 12 'X'.
        let mut failed = false;
        for tuples in [8_000u64, 32_000, 128_000] {
            let r = runner.run(&mut par, tuples);
            if r.error.is_some() {
                failed = true;
                break;
            }
        }
        assert!(failed, "parity never hit its memory wall");
    }

    #[test]
    fn read_throughput_reported_and_positive() {
        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let r = IoHeavyRunner::new(500).run(&mut fab, 1_500);
        assert!(r.read_tps.unwrap() > 0.0);
        assert!(r.disk_bytes > 0);
        assert!(r.error.is_none());
    }
}
