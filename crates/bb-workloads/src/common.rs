//! Client bookkeeping shared by all workload connectors: per-client
//! keypairs (funded at genesis by every platform), nonce counters with
//! rollback on RPC rejection, and the setup-time preloader.

use bb_crypto::KeyPair;
use bb_types::{Address, ClientId, Transaction};
use blockbench::connector::BlockchainConnector;

/// Seed base for preload (non-client) keypairs; platforms fund seeds
/// 0..1024 at genesis, clients use 0..#clients, preloaders use 900+.
pub const PRELOAD_SEED: u64 = 900;

/// Per-client signing state.
pub struct ClientBank {
    keypairs: Vec<KeyPair>,
    nonces: Vec<u64>,
}

impl ClientBank {
    /// Bank for up to `clients` clients (keyed by seed = client id).
    pub fn new(clients: u32) -> ClientBank {
        ClientBank {
            keypairs: (0..clients as u64).map(KeyPair::from_seed).collect(),
            nonces: vec![0; clients as usize],
        }
    }

    /// Sign the next transaction for `client`.
    pub fn sign(&mut self, client: ClientId, to: Address, value: u64, payload: Vec<u8>) -> Transaction {
        let nonce = self.nonces[client.index()];
        self.nonces[client.index()] += 1;
        Transaction::signed(&self.keypairs[client.index()], nonce, to, value, payload)
    }

    /// Roll back the latest nonce after an RPC rejection.
    pub fn rollback(&mut self, client: ClientId) {
        self.nonces[client.index()] = self.nonces[client.index()].saturating_sub(1);
    }

    /// The client's account address.
    pub fn address(&self, client: ClientId) -> Address {
        Address::from_public_key(&self.keypairs[client.index()].public())
    }
}

/// Preload state by pushing transactions in blocks of `per_block` through
/// the platform's setup fast path. Transactions are signed by the dedicated
/// preload key (`PRELOAD_SEED + lane`).
pub struct Preloader {
    keypair: KeyPair,
    nonce: u64,
}

impl Preloader {
    /// Preloader on lane `lane` (use distinct lanes per workload).
    pub fn new(lane: u64) -> Preloader {
        Preloader { keypair: KeyPair::from_seed(PRELOAD_SEED + lane), nonce: 0 }
    }

    /// Sign one preload transaction.
    pub fn sign(&mut self, to: Address, value: u64, payload: Vec<u8>) -> Transaction {
        let tx = Transaction::signed(&self.keypair, self.nonce, to, value, payload);
        self.nonce += 1;
        tx
    }

    /// Push `payloads` as contract calls in blocks of `per_block`.
    pub fn preload_calls(
        &mut self,
        chain: &mut dyn BlockchainConnector,
        contract: Address,
        payloads: Vec<Vec<u8>>,
        per_block: usize,
    ) {
        let mut blocks = Vec::new();
        let mut block = Vec::new();
        for p in payloads {
            block.push(self.sign(contract, 0, p));
            if block.len() >= per_block {
                blocks.push(std::mem::take(&mut block));
            }
        }
        if !block.is_empty() {
            blocks.push(block);
        }
        if !blocks.is_empty() {
            chain.preload_blocks(blocks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonces_advance_and_roll_back() {
        let mut bank = ClientBank::new(2);
        let to = Address::from_index(1);
        let t0 = bank.sign(ClientId(0), to, 0, vec![]);
        let t1 = bank.sign(ClientId(0), to, 0, vec![]);
        assert_eq!(t0.nonce, 0);
        assert_eq!(t1.nonce, 1);
        bank.rollback(ClientId(0));
        let t2 = bank.sign(ClientId(0), to, 0, vec![]);
        assert_eq!(t2.nonce, 1, "rolled-back nonce is reused");
        // Other clients unaffected.
        assert_eq!(bank.sign(ClientId(1), to, 0, vec![]).nonce, 0);
    }

    #[test]
    fn preloader_nonces_are_sequential() {
        let mut p = Preloader::new(0);
        let a = p.sign(Address::from_index(1), 0, vec![]);
        let b = p.sign(Address::from_index(1), 0, vec![]);
        assert_eq!(a.nonce, 0);
        assert_eq!(b.nonce, 1);
        assert_eq!(a.from, b.from);
    }

    #[test]
    fn distinct_lanes_use_distinct_accounts() {
        let a = Preloader::new(0).sign(Address::from_index(1), 0, vec![]);
        let b = Preloader::new(1).sign(Address::from_index(1), 0, vec![]);
        assert_ne!(a.from, b.from);
    }
}
