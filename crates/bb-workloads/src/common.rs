//! Client bookkeeping shared by all workload connectors: per-client
//! keypairs (funded at genesis by every platform), nonce counters with
//! rollback on RPC rejection, the lazy open-loop account [`Population`],
//! and the setup-time preloader.

use bb_crypto::KeyPair;
use bb_types::{AccountId, Address, ClientId, Transaction};
use blockbench::connector::BlockchainConnector;
use std::collections::{BTreeMap, HashMap};

/// Seed base for preload (non-client) keypairs; platforms fund seeds
/// 0..1024 at genesis, clients use 0..#clients, preloaders use 900+.
pub const PRELOAD_SEED: u64 = 900;

/// Seed base for open-loop population accounts: `account id + base`. Far
/// above the genesis-funded band (0..1024) and the preload lanes (900+), so
/// a million-account population can never collide with a funded client or a
/// preloader's nonce sequence. Population accounts are unfunded, which is
/// fine: every workload call carries value 0, and platforms only check
/// balances on value transfers.
pub const POPULATION_SEED_BASE: u64 = 1 << 40;

/// Default derived-key LRU capacity ([`Population::new`]).
pub const POPULATION_KEY_CACHE: usize = 4096;

/// Per-client signing state.
pub struct ClientBank {
    keypairs: Vec<KeyPair>,
    nonces: Vec<u64>,
}

impl ClientBank {
    /// Bank for up to `clients` clients (keyed by seed = client id).
    pub fn new(clients: u32) -> ClientBank {
        ClientBank {
            keypairs: (0..clients as u64).map(KeyPair::from_seed).collect(),
            nonces: vec![0; clients as usize],
        }
    }

    /// Sign the next transaction for `client`.
    pub fn sign(&mut self, client: ClientId, to: Address, value: u64, payload: Vec<u8>) -> Transaction {
        let nonce = self.nonces[client.index()];
        self.nonces[client.index()] += 1;
        Transaction::signed(&self.keypairs[client.index()], nonce, to, value, payload)
    }

    /// Roll back the latest nonce after an RPC rejection.
    pub fn rollback(&mut self, client: ClientId) {
        self.nonces[client.index()] = self.nonces[client.index()].saturating_sub(1);
    }

    /// The client's account address.
    pub fn address(&self, client: ClientId) -> Address {
        Address::from_public_key(&self.keypairs[client.index()].public())
    }
}

/// A deterministic LRU of seed-derived keypairs: the signing hot path for
/// million-account populations. Derivation is two SHA-256 compressions, so
/// the cache exists to keep the *hot* accounts free even of that; eviction
/// order depends only on the access sequence (monotone logical clock, no
/// wall time), preserving run-to-run byte identity.
struct KeyLru {
    capacity: usize,
    clock: u64,
    /// account → (keypair, last-use stamp).
    map: HashMap<u64, (KeyPair, u64)>,
    /// last-use stamp → account (stamps are unique: one per access).
    order: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl KeyLru {
    fn new(capacity: usize) -> KeyLru {
        assert!(capacity > 0, "key cache needs room for at least one key");
        KeyLru {
            capacity,
            clock: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, account: u64) -> KeyPair {
        self.clock += 1;
        if let Some((kp, stamp)) = self.map.get_mut(&account) {
            self.hits += 1;
            self.order.remove(stamp);
            *stamp = self.clock;
            self.order.insert(self.clock, account);
            return *kp;
        }
        self.misses += 1;
        if self.map.len() >= self.capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("cache full but order empty");
            self.order.remove(&oldest);
            self.map.remove(&victim);
        }
        let kp = KeyPair::from_seed(POPULATION_SEED_BASE + account);
        self.map.insert(account, (kp, self.clock));
        self.order.insert(self.clock, account);
        kp
    }
}

/// Signing state for an open-loop account population: keypairs derived on
/// demand from the account id (through a bounded LRU) and nonces in a sparse
/// touched-accounts-only map. Memory is O(active set) — a million-account
/// population that sends ten thousand transactions holds ten thousand nonce
/// slots and at most [`POPULATION_KEY_CACHE`] keys, never a million of
/// either.
pub struct Population {
    keys: KeyLru,
    nonces: HashMap<u64, u64>,
}

impl Default for Population {
    fn default() -> Self {
        Population::new(POPULATION_KEY_CACHE)
    }
}

impl Population {
    /// Population signer with a `key_cache` -entry derived-key LRU.
    pub fn new(key_cache: usize) -> Population {
        Population { keys: KeyLru::new(key_cache), nonces: HashMap::new() }
    }

    /// Sign the next transaction for `account`.
    pub fn sign(
        &mut self,
        account: AccountId,
        to: Address,
        value: u64,
        payload: Vec<u8>,
    ) -> Transaction {
        let nonce = self.nonces.entry(account.0).or_insert(0);
        let used = *nonce;
        *nonce += 1;
        let kp = self.keys.get(account.0);
        Transaction::signed(&kp, used, to, value, payload)
    }

    /// Roll back the latest nonce after an RPC rejection.
    pub fn rollback(&mut self, account: AccountId) {
        if let Some(nonce) = self.nonces.get_mut(&account.0) {
            *nonce = nonce.saturating_sub(1);
        }
    }

    /// The account's address (derives the key if not cached).
    pub fn address(&mut self, account: AccountId) -> Address {
        Address::from_public_key(&self.keys.get(account.0).public())
    }

    /// Number of distinct accounts touched so far — the RSS proxy the
    /// memory-proportionality tests assert on.
    pub fn touched(&self) -> usize {
        self.nonces.len()
    }

    /// Derived-key cache residency and `(hits, misses)` counters.
    pub fn key_cache_stats(&self) -> (usize, u64, u64) {
        (self.keys.map.len(), self.keys.hits, self.keys.misses)
    }
}

/// Preload state by pushing transactions in blocks of `per_block` through
/// the platform's setup fast path. Transactions are signed by the dedicated
/// preload key (`PRELOAD_SEED + lane`).
pub struct Preloader {
    keypair: KeyPair,
    nonce: u64,
}

impl Preloader {
    /// Preloader on lane `lane` (use distinct lanes per workload).
    pub fn new(lane: u64) -> Preloader {
        Preloader { keypair: KeyPair::from_seed(PRELOAD_SEED + lane), nonce: 0 }
    }

    /// Sign one preload transaction.
    pub fn sign(&mut self, to: Address, value: u64, payload: Vec<u8>) -> Transaction {
        let tx = Transaction::signed(&self.keypair, self.nonce, to, value, payload);
        self.nonce += 1;
        tx
    }

    /// Push `payloads` as contract calls in blocks of `per_block`.
    pub fn preload_calls(
        &mut self,
        chain: &mut dyn BlockchainConnector,
        contract: Address,
        payloads: Vec<Vec<u8>>,
        per_block: usize,
    ) {
        let mut blocks = Vec::new();
        let mut block = Vec::new();
        for p in payloads {
            block.push(self.sign(contract, 0, p));
            if block.len() >= per_block {
                blocks.push(std::mem::take(&mut block));
            }
        }
        if !block.is_empty() {
            blocks.push(block);
        }
        if !blocks.is_empty() {
            chain.preload_blocks(blocks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonces_advance_and_roll_back() {
        let mut bank = ClientBank::new(2);
        let to = Address::from_index(1);
        let t0 = bank.sign(ClientId(0), to, 0, vec![]);
        let t1 = bank.sign(ClientId(0), to, 0, vec![]);
        assert_eq!(t0.nonce, 0);
        assert_eq!(t1.nonce, 1);
        bank.rollback(ClientId(0));
        let t2 = bank.sign(ClientId(0), to, 0, vec![]);
        assert_eq!(t2.nonce, 1, "rolled-back nonce is reused");
        // Other clients unaffected.
        assert_eq!(bank.sign(ClientId(1), to, 0, vec![]).nonce, 0);
    }

    #[test]
    fn preloader_nonces_are_sequential() {
        let mut p = Preloader::new(0);
        let a = p.sign(Address::from_index(1), 0, vec![]);
        let b = p.sign(Address::from_index(1), 0, vec![]);
        assert_eq!(a.nonce, 0);
        assert_eq!(b.nonce, 1);
        assert_eq!(a.from, b.from);
    }

    #[test]
    fn distinct_lanes_use_distinct_accounts() {
        let a = Preloader::new(0).sign(Address::from_index(1), 0, vec![]);
        let b = Preloader::new(1).sign(Address::from_index(1), 0, vec![]);
        assert_ne!(a.from, b.from);
    }

    #[test]
    fn population_nonces_advance_and_roll_back_sparsely() {
        let mut pop = Population::new(8);
        let to = Address::from_index(1);
        let acct = AccountId(123_456_789);
        let t0 = pop.sign(acct, to, 0, vec![]);
        let t1 = pop.sign(acct, to, 0, vec![]);
        assert_eq!((t0.nonce, t1.nonce), (0, 1));
        assert_eq!(t0.from, t1.from);
        pop.rollback(acct);
        assert_eq!(pop.sign(acct, to, 0, vec![]).nonce, 1, "rolled-back nonce is reused");
        // Rolling back an untouched account allocates nothing.
        pop.rollback(AccountId(42));
        assert_eq!(pop.touched(), 1);
    }

    #[test]
    fn population_accounts_are_disjoint_from_clients_and_preloaders() {
        let mut pop = Population::default();
        // Population account 0 must not alias client seed 0 or any preload
        // lane — its seed lives above POPULATION_SEED_BASE.
        let client0 = Address::from_public_key(&KeyPair::from_seed(0).public());
        let preload0 = Address::from_public_key(&KeyPair::from_seed(PRELOAD_SEED).public());
        let a = pop.address(AccountId(0));
        assert_ne!(a, client0);
        assert_ne!(a, preload0);
        assert_eq!(
            a,
            Address::from_public_key(&KeyPair::from_seed(POPULATION_SEED_BASE).public())
        );
    }

    #[test]
    fn population_key_cache_is_bounded_and_deterministic() {
        let run = || {
            let mut pop = Population::new(16);
            let to = Address::from_index(1);
            // 64 distinct accounts cycled twice through a 16-entry cache.
            let mut ids = Vec::new();
            for _round in 0..2 {
                for a in 0..64u64 {
                    let tx = pop.sign(AccountId(a * 1000), to, 0, vec![]);
                    ids.push(tx.id());
                }
            }
            let (resident, hits, misses) = pop.key_cache_stats();
            assert!(resident <= 16, "cache grew to {resident}");
            assert!(misses >= 64, "every cold account must miss once");
            (ids, hits, misses, pop.touched())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "LRU behaviour must be run-to-run deterministic");
        assert_eq!(a.3, 64);
    }

    #[test]
    fn population_memory_tracks_active_set_not_population() {
        // A "million-account" population that only ever touches 100 accounts
        // holds 100 nonce slots. The population size appears nowhere in the
        // struct — that's the point.
        let mut pop = Population::default();
        let to = Address::from_index(1);
        for i in 0..1000u64 {
            pop.sign(AccountId((i % 100) * 9973), to, 0, vec![]);
        }
        assert_eq!(pop.touched(), 100);
        let (resident, hits, misses) = pop.key_cache_stats();
        assert_eq!(resident, 100);
        assert_eq!(misses, 100);
        assert_eq!(hits, 900);
    }
}
