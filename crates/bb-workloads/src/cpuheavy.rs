//! The CPUHeavy micro-benchmark runner (Section 4.2.1, Figure 11): deploy
//! the quicksort contract on a one-server deployment, run one sort
//! transaction per input size, and report execution time and peak memory —
//! or the out-of-memory failure.

use crate::common::Preloader;
use bb_contracts::cpuheavy;
use bb_sim::SimDuration;
use blockbench::connector::BlockchainConnector;

/// One CPUHeavy measurement.
#[derive(Debug, Clone)]
pub struct CpuHeavyResult {
    /// Input size (elements).
    pub n: u64,
    /// Simulated execution time; `None` when the run failed.
    pub exec_time: Option<SimDuration>,
    /// Modeled peak memory in bytes.
    pub peak_mem: u64,
    /// Failure cause (the paper's 'X' is out-of-memory).
    pub error: Option<String>,
}

/// Runs CPUHeavy sorts against any platform.
pub struct CpuHeavyRunner {
    preloader: Preloader,
    contract: Option<bb_types::Address>,
}

impl Default for CpuHeavyRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl CpuHeavyRunner {
    /// Fresh runner.
    pub fn new() -> CpuHeavyRunner {
        CpuHeavyRunner { preloader: Preloader::new(4), contract: None }
    }

    /// Sort `n` elements on `chain` and measure.
    pub fn run(&mut self, chain: &mut dyn BlockchainConnector, n: u64) -> CpuHeavyResult {
        let contract = *self
            .contract
            .get_or_insert_with(|| chain.deploy(&cpuheavy::bundle()));
        let tx = self.preloader.sign(contract, 0, cpuheavy::sort_call(n));
        let res = chain.execute_direct(tx);
        CpuHeavyResult {
            n,
            exec_time: res.success.then_some(res.duration),
            peak_mem: res.modeled_mem,
            error: res.error,
        }
    }

    /// Sweep several input sizes (Figure 11's x-axis).
    pub fn sweep(
        &mut self,
        chain: &mut dyn BlockchainConnector,
        sizes: &[u64],
    ) -> Vec<CpuHeavyResult> {
        sizes.iter().map(|&n| self.run(chain, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_ethereum::{EthConfig, EthereumChain};
    use bb_fabric::{FabricChain, FabricConfig};
    use bb_parity::{ParityChain, ParityConfig};

    #[test]
    fn ordering_matches_figure_11() {
        // Same input, three platforms: Hyperledger ≪ Parity < Ethereum.
        let n = 20_000;
        let mut eth = EthereumChain::new(EthConfig::with_nodes(1));
        let mut par = ParityChain::new(ParityConfig::with_nodes(1));
        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let re = CpuHeavyRunner::new().run(&mut eth, n);
        let rp = CpuHeavyRunner::new().run(&mut par, n);
        let rf = CpuHeavyRunner::new().run(&mut fab, n);
        let (te, tp, tf) = (
            re.exec_time.unwrap(),
            rp.exec_time.unwrap(),
            rf.exec_time.unwrap(),
        );
        assert!(te > tp, "ethereum {te} vs parity {tp}");
        assert!(tp.as_secs_f64() > 5.0 * tf.as_secs_f64(), "parity {tp} vs fabric {tf}");
        // And Ethereum's memory appetite dwarfs the others' (Figure 11).
        assert!(re.peak_mem > 2 * rp.peak_mem, "eth mem {} vs parity {}", re.peak_mem, rp.peak_mem);
    }

    #[test]
    fn ethereum_ooms_on_oversized_input() {
        // Scale the node memory down so the OOM point is test-sized.
        let mut config = EthConfig::with_nodes(1);
        config.node_mem_bytes = config.costs.mem_base + (100 << 20); // +100 MiB
        let mut eth = EthereumChain::new(config);
        let mut runner = CpuHeavyRunner::new();
        // 100 MiB / 260 overhead ≈ 400 KiB of VM arena → ~30k elements max
        // (the arena includes the 128 KiB program region).
        let small = runner.run(&mut eth, 10_000);
        assert!(small.error.is_none(), "{:?}", small.error);
        let big = runner.run(&mut eth, 200_000);
        assert!(big.exec_time.is_none());
        assert!(big.error.unwrap().contains("memory"));
    }

    #[test]
    fn sweep_is_monotone_in_time() {
        let mut fab = FabricChain::new(FabricConfig::with_nodes(4));
        let mut runner = CpuHeavyRunner::new();
        let results = runner.sweep(&mut fab, &[1_000, 10_000, 100_000]);
        let times: Vec<f64> =
            results.iter().map(|r| r.exec_time.unwrap().as_secs_f64()).collect();
        assert!(times[0] < times[1] && times[1] < times[2], "{times:?}");
    }
}
