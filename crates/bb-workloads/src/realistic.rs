//! The three "real workloads found in the Ethereum blockchain"
//! (Section 3.4.1): the EtherId name registrar, the Doubler pyramid scheme
//! and the WavesPresale crowd sale.

use crate::common::ClientBank;
use bb_contracts::{doubler, etherid, wavespresale};
use bb_sim::SimRng;
use bb_types::{Address, ClientId, Transaction};
use blockbench::connector::BlockchainConnector;
use blockbench::driver::WorkloadConnector;

/// EtherId: register / deposit / buy / transfer domain names. "The contract
/// contains a function to pre-allocate user accounts with certain balances"
/// — the preload funds each client's in-contract balance.
pub struct EtherIdWorkload {
    bank: ClientBank,
    rng: SimRng,
    contract: Option<Address>,
    next_domain: u64,
    registered: Vec<u64>,
    clients: u32,
}

impl EtherIdWorkload {
    /// Provision for up to `clients` clients.
    pub fn new(clients: u32, seed: u64) -> EtherIdWorkload {
        EtherIdWorkload {
            bank: ClientBank::new(clients),
            rng: SimRng::seed_from_u64(seed),
            contract: None,
            next_domain: 0,
            registered: Vec::new(),
            clients,
        }
    }
}

impl WorkloadConnector for EtherIdWorkload {
    fn name(&self) -> &'static str {
        "etherid"
    }

    fn setup(&mut self, chain: &mut dyn BlockchainConnector) {
        let contract = chain.deploy(&etherid::bundle());
        self.contract = Some(contract);
        // Fund each client's registrar balance; clients must deposit from
        // their own accounts, so sign with the client keys directly.
        let mut blocks = Vec::new();
        let mut block = Vec::new();
        for c in 0..self.clients {
            block.push(self.bank.sign(ClientId(c), contract, 0, etherid::deposit_call(1_000_000)));
            if block.len() == 200 {
                blocks.push(std::mem::take(&mut block));
            }
        }
        if !block.is_empty() {
            blocks.push(block);
        }
        chain.preload_blocks(blocks);
    }

    fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let roll = self.rng.below(100);
        let payload = if roll < 40 || self.registered.is_empty() {
            let d = self.next_domain;
            self.next_domain += 1;
            self.registered.push(d);
            etherid::register_call(d, 1 + self.rng.below(100) as i64)
        } else if roll < 70 {
            let d = self.registered[self.rng.below(self.registered.len() as u64) as usize];
            etherid::buy_call(d)
        } else if roll < 85 {
            let d = self.registered[self.rng.below(self.registered.len() as u64) as usize];
            let heir = self.bank.address(ClientId(self.rng.below(self.clients as u64) as u32));
            etherid::transfer_call(d, heir.as_bytes())
        } else {
            etherid::deposit_call(1000)
        };
        self.bank.sign(client, contract, 0, payload)
    }

    fn on_rejected(&mut self, client: ClientId) {
        self.bank.rollback(client);
    }
}

/// Doubler: everyone keeps calling `enter` (Figure 2's pyramid scheme).
pub struct DoublerWorkload {
    bank: ClientBank,
    rng: SimRng,
    contract: Option<Address>,
}

impl DoublerWorkload {
    /// Provision for up to `clients` clients.
    pub fn new(clients: u32, seed: u64) -> DoublerWorkload {
        DoublerWorkload {
            bank: ClientBank::new(clients),
            rng: SimRng::seed_from_u64(seed),
            contract: None,
        }
    }
}

impl WorkloadConnector for DoublerWorkload {
    fn name(&self) -> &'static str {
        "doubler"
    }

    fn setup(&mut self, chain: &mut dyn BlockchainConnector) {
        self.contract = Some(chain.deploy(&doubler::bundle()));
    }

    fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let amount = 10 + self.rng.below(90) as i64;
        // The EVM build pays out of the contract's pot: send the stake
        // along as value so the pot stays solvent.
        self.bank.sign(client, contract, amount as u64, doubler::enter_call(amount))
    }

    fn on_rejected(&mut self, client: ClientId) {
        self.bank.rollback(client);
    }
}

/// WavesPresale: add token sales, transfer and query them.
pub struct WavesWorkload {
    bank: ClientBank,
    rng: SimRng,
    contract: Option<Address>,
    next_sale: u64,
    clients: u32,
}

impl WavesWorkload {
    /// Provision for up to `clients` clients.
    pub fn new(clients: u32, seed: u64) -> WavesWorkload {
        WavesWorkload {
            bank: ClientBank::new(clients),
            rng: SimRng::seed_from_u64(seed),
            contract: None,
            next_sale: 0,
            clients,
        }
    }
}

impl WorkloadConnector for WavesWorkload {
    fn name(&self) -> &'static str {
        "wavespresale"
    }

    fn setup(&mut self, chain: &mut dyn BlockchainConnector) {
        self.contract = Some(chain.deploy(&wavespresale::bundle()));
    }

    fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let roll = self.rng.below(100);
        let payload = if roll < 50 || self.next_sale == 0 {
            let id = self.next_sale;
            self.next_sale += 1;
            wavespresale::add_sale_call(id, 100 + self.rng.below(1000) as i64)
        } else if roll < 75 {
            let id = self.rng.below(self.next_sale);
            let heir = self.bank.address(ClientId(self.rng.below(self.clients as u64) as u32));
            wavespresale::transfer_sale_call(id, heir.as_bytes())
        } else {
            wavespresale::query_sale_call(self.rng.below(self.next_sale))
        };
        self.bank.sign(client, contract, 0, payload)
    }

    fn on_rejected(&mut self, client: ClientId) {
        self.bank.rollback(client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_fabric::{FabricChain, FabricConfig};
    use bb_sim::SimDuration;
    use blockbench::driver::{run_workload, DriverConfig};

    fn quick_config() -> DriverConfig {
        DriverConfig {
            clients: 4,
            rate_per_client: 25.0,
            duration: SimDuration::from_secs(8),
            poll_interval: SimDuration::from_millis(250),
            drain: SimDuration::from_secs(5),
        }
    }

    #[test]
    fn etherid_runs_end_to_end() {
        let mut chain = FabricChain::new(FabricConfig::with_nodes(4));
        let mut w = EtherIdWorkload::new(4, 3);
        let stats = run_workload(&mut chain, &mut w, &quick_config());
        assert!(stats.committed > 500, "{}", stats.summary_line());
        // Some buys/transfers of contested domains legitimately abort, but
        // the bulk must succeed.
        assert!(stats.aborted < stats.committed / 3, "{}", stats.summary_line());
    }

    #[test]
    fn doubler_runs_end_to_end() {
        let mut chain = FabricChain::new(FabricConfig::with_nodes(4));
        let mut w = DoublerWorkload::new(4, 5);
        let stats = run_workload(&mut chain, &mut w, &quick_config());
        assert!(stats.committed > 600, "{}", stats.summary_line());
        assert_eq!(stats.aborted, 0, "{}", stats.summary_line());
    }

    #[test]
    fn waves_runs_end_to_end() {
        let mut chain = FabricChain::new(FabricConfig::with_nodes(4));
        let mut w = WavesWorkload::new(4, 9);
        let stats = run_workload(&mut chain, &mut w, &quick_config());
        assert!(stats.committed > 600, "{}", stats.summary_line());
        assert!(stats.aborted < stats.committed / 3, "{}", stats.summary_line());
    }
}
