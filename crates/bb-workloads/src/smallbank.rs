//! The Smallbank OLTP workload (Section 3.4.1): multi-key transactional
//! procedures over bank accounts — "more complex... than YCSB, in which
//! multiple keys are updated in a single transaction" (Appendix B).

use crate::common::{ClientBank, Population, Preloader};
use bb_contracts::smallbank;
use bb_sim::SimRng;
use bb_types::{AccountId, Address, ClientId, Transaction};
use blockbench::connector::BlockchainConnector;
use blockbench::driver::WorkloadConnector;

/// Smallbank parameters.
#[derive(Debug, Clone)]
pub struct SmallbankConfig {
    /// Account population.
    pub accounts: u64,
    /// Accounts preloaded with an opening balance (0 = skip).
    pub preload_accounts: u64,
    /// Opening checking balance per preloaded account.
    pub opening_balance: i64,
    /// Max concurrent clients.
    pub clients: u32,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for SmallbankConfig {
    fn default() -> Self {
        SmallbankConfig {
            accounts: 10_000,
            preload_accounts: 1_000,
            opening_balance: 1_000_000,
            clients: 32,
            seed: 11,
        }
    }
}

/// The Smallbank workload connector.
pub struct SmallbankWorkload {
    config: SmallbankConfig,
    bank: ClientBank,
    population: Population,
    rng: SimRng,
    contract: Option<Address>,
}

impl SmallbankWorkload {
    /// Build from config.
    pub fn new(config: SmallbankConfig) -> SmallbankWorkload {
        let rng = SimRng::seed_from_u64(config.seed);
        SmallbankWorkload {
            bank: ClientBank::new(config.clients),
            population: Population::default(),
            rng,
            contract: None,
            config,
        }
    }

    fn account(&mut self) -> u64 {
        self.rng.below(self.config.accounts)
    }

    /// One procedure-mix call payload (shared by both signing paths).
    fn payload(&mut self) -> Vec<u8> {
        let a = self.account();
        let b = self.account();
        let amount = 1 + self.rng.below(50) as i64;
        // The classic Smallbank mix, SendPayment-heavy.
        match self.rng.below(100) {
            0..=29 => smallbank::send_payment_call(a, b, amount),
            30..=49 => smallbank::deposit_checking_call(a, amount),
            50..=64 => smallbank::transact_savings_call(a, amount),
            65..=79 => smallbank::write_check_call(a, amount),
            80..=89 => smallbank::amalgamate_call(a, b),
            _ => smallbank::query_call(a),
        }
    }

    /// Open-loop population state (active set size, key-cache counters).
    pub fn population(&self) -> &Population {
        &self.population
    }
}

impl WorkloadConnector for SmallbankWorkload {
    fn name(&self) -> &'static str {
        "smallbank"
    }

    fn setup(&mut self, chain: &mut dyn BlockchainConnector) {
        let contract = chain.deploy(&smallbank::bundle());
        self.contract = Some(contract);
        if self.config.preload_accounts > 0 {
            let payloads: Vec<Vec<u8>> = (0..self.config.preload_accounts)
                .map(|a| smallbank::deposit_checking_call(a, self.config.opening_balance))
                .collect();
            Preloader::new(1).preload_calls(chain, contract, payloads, 500);
        }
    }

    fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let payload = self.payload();
        self.bank.sign(client, contract, 0, payload)
    }

    fn on_rejected(&mut self, client: ClientId) {
        self.bank.rollback(client);
    }

    fn next_transaction_keyed(&mut self, account: AccountId) -> Transaction {
        let contract = self.contract.expect("setup ran");
        let payload = self.payload();
        self.population.sign(account, contract, 0, payload)
    }

    fn on_rejected_keyed(&mut self, account: AccountId) {
        self.population.rollback(account);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_fabric::{FabricChain, FabricConfig};
    use bb_sim::SimDuration;
    use blockbench::driver::{run_workload, DriverConfig};

    #[test]
    fn procedure_mix_covers_all_methods() {
        let mut w = SmallbankWorkload::new(SmallbankConfig {
            preload_accounts: 0,
            ..SmallbankConfig::default()
        });
        w.contract = Some(Address::from_index(1));
        let mut seen = [false; 6];
        for i in 0..500 {
            let tx = w.next_transaction(ClientId(i % 8));
            seen[tx.payload[0] as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "mix missed a procedure: {seen:?}");
    }

    #[test]
    fn end_to_end_on_fabric_with_low_abort_rate() {
        let mut chain = FabricChain::new(FabricConfig::with_nodes(4));
        let mut w = SmallbankWorkload::new(SmallbankConfig {
            accounts: 1000,
            preload_accounts: 1000,
            ..SmallbankConfig::default()
        });
        let stats = run_workload(
            &mut chain,
            &mut w,
            &DriverConfig {
                clients: 4,
                rate_per_client: 50.0,
                duration: SimDuration::from_secs(10),
                poll_interval: SimDuration::from_millis(250),
                drain: SimDuration::from_secs(5),
            },
        );
        assert!(stats.committed > 1500, "{}", stats.summary_line());
        // Preloaded balances keep insufficient-funds aborts rare.
        assert!(
            (stats.aborted as f64) < 0.05 * stats.committed as f64,
            "abort rate too high: {}",
            stats.summary_line()
        );
    }
}
