//! Configuration and cost model for the Ethereum-like platform.

use bb_consensus::PowParams;
use bb_net::LinkParams;
use bb_sim::SimDuration;

/// CPU/memory cost constants of an EVM-like execution engine. Parity reuses
/// this struct with cheaper constants ("Parity's implementation is more
/// optimized, therefore it is more computation and memory efficient" —
/// Section 4.2.1).
#[derive(Debug, Clone)]
pub struct EvmCosts {
    /// Simulated nanoseconds of CPU per unit of gas.
    pub ns_per_gas: f64,
    /// Per-transaction signature verification cost at admission.
    pub sig_verify: SimDuration,
    /// Fixed runtime footprint of the node process, bytes.
    pub mem_base: u64,
    /// Modeled resident bytes per byte of VM memory (interpreter object
    /// overhead: ~260× for geth's EVM per Figure 11, ~26× for Parity).
    pub mem_overhead: f64,
}

impl EvmCosts {
    /// geth-grade constants (Figure 11: 10.5 s and 4.1 GB for the 1M-element
    /// sort, out-of-memory at 100M on a 32 GB node).
    pub fn ethereum() -> EvmCosts {
        EvmCosts {
            ns_per_gas: 14.0,
            sig_verify: SimDuration::from_micros(2000),
            mem_base: 300 << 20,
            mem_overhead: 260.0,
        }
    }

    /// Parity-grade constants (same bytecode, ~3.5× faster, ~10× leaner).
    pub fn parity() -> EvmCosts {
        EvmCosts {
            ns_per_gas: 4.0,
            sig_verify: SimDuration::from_micros(12_500),
            mem_base: 150 << 20,
            mem_overhead: 26.0,
        }
    }

    /// CPU time to execute `gas` units.
    pub fn exec_time(&self, gas: u64) -> SimDuration {
        SimDuration::from_secs_f64(gas as f64 * self.ns_per_gas * 1e-9)
    }

    /// Modeled resident memory for a VM execution peaking at `vm_bytes`.
    pub fn modeled_mem(&self, vm_bytes: u64) -> u64 {
        self.mem_base + (vm_bytes as f64 * self.mem_overhead) as u64
    }
}

/// Full configuration of an Ethereum-like network.
#[derive(Debug, Clone)]
pub struct EthConfig {
    /// Server (miner) count.
    pub nodes: u32,
    /// PoW parameters (intervals, difficulty scaling, confirmation depth).
    pub pow: PowParams,
    /// Network link parameters.
    pub link: LinkParams,
    /// Gas budget per block (the `gasLimit` the paper tuned for Figure 15).
    pub block_gas_limit: u64,
    /// Transactions per block (geth's practical inclusion bound at the
    /// paper's difficulty: ~710 ≈ 284 tx/s × 2.5 s, regardless of workload —
    /// the measured Smallbank/YCSB peaks differ by ~10%, not by their gas
    /// ratio).
    pub max_txs_per_block: usize,
    /// Gas budget per transaction.
    pub tx_gas_limit: u64,
    /// Age-out horizon for future-nonced pool entries, in blocks: a
    /// transaction whose nonce gap persists this many blocks past its
    /// admission is evicted from the pool rather than re-queued forever.
    /// geth's pool is unbounded here, so pinning shows up as unbounded
    /// pool growth (and wasted re-validation) instead of "queue full".
    pub pool_evict_blocks: u64,
    /// Execution-engine cost constants.
    pub costs: EvmCosts,
    /// Node RAM for the memory model (the testbed's 32 GB, scaled together
    /// with workload sizes).
    pub node_mem_bytes: u64,
    /// Probability a server gossips a received transaction to each peer.
    /// 1.0 = geth's full broadcast; lower values reproduce the paper's
    /// "servers do not always broadcast transactions to each other"
    /// under-utilisation (Section 4.1.2) at the cost of nonce-gap stalls.
    pub tx_gossip_prob: f64,
    /// Client→server RPC latency.
    pub rpc_delay: SimDuration,
    /// Cores reserved for the node process (the paper reserved 8).
    pub cores: u32,
    /// Post-restart catch-up policy: gaps strictly larger than this many
    /// blocks are closed by chunked snapshot state sync instead of block
    /// replay. `u64::MAX` disables snapshots entirely.
    pub snapshot_sync_blocks: u64,
    /// Payload bytes per snapshot state-sync chunk.
    pub snapshot_chunk_bytes: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl EthConfig {
    /// The paper's macro-benchmark deployment at `nodes` servers.
    pub fn with_nodes(nodes: u32) -> EthConfig {
        EthConfig {
            nodes,
            pow: PowParams::default(),
            link: LinkParams::default(),
            // Generous gas roof; the ~710-transaction count bound below is
            // what yields the 284 tx/s Figure 5 peak.
            block_gas_limit: 12_000_000,
            max_txs_per_block: 710,
            tx_gas_limit: 1_000_000,
            pool_evict_blocks: 8,
            costs: EvmCosts::ethereum(),
            node_mem_bytes: 32 << 30,
            tx_gossip_prob: 1.0,
            rpc_delay: SimDuration::from_micros(800),
            cores: 8,
            snapshot_sync_blocks: 24,
            snapshot_chunk_bytes: 256 << 10,
            seed: 42,
        }
    }
}

impl Default for EthConfig {
    fn default() -> Self {
        EthConfig::with_nodes(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_is_faster_and_leaner_than_ethereum() {
        let eth = EvmCosts::ethereum();
        let par = EvmCosts::parity();
        assert!(par.ns_per_gas * 3.0 < eth.ns_per_gas);
        assert!(par.mem_overhead * 5.0 < eth.mem_overhead);
        // But Parity's signing is the slow part.
        assert!(par.sig_verify > eth.sig_verify);
    }

    #[test]
    fn exec_time_scales_linearly() {
        let c = EvmCosts::ethereum();
        assert_eq!(c.exec_time(2_000_000).as_micros(), 2 * c.exec_time(1_000_000).as_micros());
    }

    #[test]
    fn memory_model_hits_32gb_wall() {
        // 100M elements × 8 B VM words × 260 overhead ≈ 208 GB > 32 GB.
        let c = EvmCosts::ethereum();
        assert!(c.modeled_mem(100_000_000 * 8) > 32 << 30);
        // 10M elements fit (≈ 21 GB).
        assert!(c.modeled_mem(10_000_000 * 8) < 32 << 30);
        // Parity survives 100M (≈ 21 GB).
        assert!(EvmCosts::parity().modeled_mem(100_000_000 * 8) < (32u64) << 30);
    }
}
