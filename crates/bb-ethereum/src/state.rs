//! The account-model state machine shared by the EVM-like platforms.
//!
//! "An account in Ethereum has a balance as its state, and is updated upon
//! receiving a transaction. A special type of account, called smart
//! contract, contains executable code and private states." (Section 3.1.2)
//!
//! Accounts, contract code and contract storage all live in one
//! Merkle-Patricia trie keyed by:
//! - `addr` → encoded [`Account`],
//! - `addr ++ "#code"` → serialized [`SvmContract`],
//! - `addr ++ "#s" ++ key` → contract storage.
//!
//! Transaction application uses a *buffered* VM host: contract writes and
//! outbound transfers accumulate in an overlay and flush only on success,
//! giving the revert/out-of-gas rollback the paper describes for the EVM
//! (Section 3.1.3).

use bb_merkle::PatriciaTrie;
use bb_storage::{KvError, KvStore};
use bb_svm::{Host, Vm};
use bb_types::{Address, Transaction};
use blockbench::contract::{decode_call, SvmContract};
use std::collections::BTreeMap;

/// A non-contract or contract account.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Account {
    /// Native currency balance.
    pub balance: i64,
    /// Next expected transaction nonce.
    pub nonce: u64,
    /// Does this account carry contract code?
    pub is_contract: bool,
}

impl Account {
    /// Canonical trie encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        out.extend_from_slice(&self.balance.to_le_bytes());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.push(u8::from(self.is_contract));
        out
    }

    /// Decode; malformed bytes yield a default account (trie corruption is
    /// caught earlier by hashes).
    pub fn decode(bytes: &[u8]) -> Account {
        if bytes.len() != 17 {
            return Account::default();
        }
        Account {
            balance: i64::from_le_bytes(bytes[..8].try_into().expect("8")),
            nonce: u64::from_le_bytes(bytes[8..16].try_into().expect("8")),
            is_contract: bytes[16] != 0,
        }
    }
}

fn code_key(addr: &Address) -> Vec<u8> {
    let mut k = addr.0.to_vec();
    k.extend_from_slice(b"#code");
    k
}

fn storage_key(addr: &Address, key: &[u8]) -> Vec<u8> {
    let mut k = addr.0.to_vec();
    k.extend_from_slice(b"#s");
    k.extend_from_slice(key);
    k
}

/// Why a transaction could not even be included in a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxInvalid {
    /// Nonce does not match the sender's account.
    BadNonce {
        /// Nonce the account expects.
        expected: u64,
        /// Nonce the transaction carried.
        got: u64,
    },
    /// Storage backend failure (Parity's in-memory cap, for instance).
    Storage(String),
}

impl std::fmt::Display for TxInvalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxInvalid::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            TxInvalid::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

/// Outcome of applying an *included* transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Did the transfer + contract call succeed?
    pub success: bool,
    /// Gas consumed (0 for pure transfers with no contract call).
    pub gas_used: u64,
    /// Contract return data.
    pub output: Vec<u8>,
    /// Peak VM memory in bytes (CPUHeavy's memory model input).
    pub vm_peak_mem: u64,
    /// Human-readable failure cause, if any.
    pub error: Option<String>,
}

/// The account state machine over a trie backend.
pub struct AccountState<S: KvStore> {
    trie: PatriciaTrie<S>,
}

impl<S: KvStore> AccountState<S> {
    /// Empty state over `store`.
    pub fn new(store: S) -> Self {
        AccountState { trie: PatriciaTrie::new(store) }
    }

    /// Current state root (committed into block headers).
    pub fn root(&self) -> bb_crypto::Hash256 {
        self.trie.root()
    }

    /// Move the state view to a (historical) root.
    pub fn set_root(&mut self, root: bb_crypto::Hash256) {
        self.trie.set_root(root);
    }

    /// Read an account (default if absent).
    pub fn account(&mut self, addr: &Address) -> Result<Account, KvError> {
        Ok(self.trie.get(&addr.0)?.map(|b| Account::decode(&b)).unwrap_or_default())
    }

    /// Read an account at a historical root — Ethereum/Parity's
    /// `getBalance(account, block)` JSON-RPC (the Q2 analytics path).
    pub fn account_at(
        &mut self,
        root: bb_crypto::Hash256,
        addr: &Address,
    ) -> Result<Account, KvError> {
        Ok(self
            .trie
            .get_at(root, &addr.0)?
            .map(|b| Account::decode(&b))
            .unwrap_or_default())
    }

    /// Write an account.
    pub fn put_account(&mut self, addr: &Address, acct: &Account) -> Result<(), KvError> {
        self.trie.insert(&addr.0, &acct.encode())
    }

    /// Credit an account (genesis funding, PoA/PoW rewards, preloads).
    pub fn credit(&mut self, addr: &Address, amount: i64) -> Result<(), KvError> {
        let mut acct = self.account(addr)?;
        acct.balance += amount;
        self.put_account(addr, &acct)
    }

    /// Install contract code at `addr` (deployment fast-path shared by all
    /// nodes at setup time).
    pub fn install_contract(&mut self, addr: &Address, code: &SvmContract) -> Result<(), KvError> {
        let mut acct = self.account(addr)?;
        acct.is_contract = true;
        self.put_account(addr, &acct)?;
        self.trie.insert(&code_key(addr), &code.encode())
    }

    /// Fetch contract code.
    pub fn contract_code(&mut self, addr: &Address) -> Result<Option<SvmContract>, KvError> {
        Ok(self.trie.get(&code_key(addr))?.and_then(|b| SvmContract::decode(&b)))
    }

    /// Read a raw contract-storage slot (tests / analytics).
    pub fn contract_storage(
        &mut self,
        addr: &Address,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, KvError> {
        self.trie.get(&storage_key(addr, key))
    }

    /// Borrow the backing store (stats).
    pub fn store(&self) -> &S {
        self.trie.store()
    }

    /// Mutably borrow the backing store (restart recovery scans).
    pub fn store_mut(&mut self) -> &mut S {
        self.trie.store_mut()
    }

    /// Drop everything volatile in the state trie — the uncommitted dirty
    /// overlay and the decoded-node cache — keeping only what the backing
    /// store holds. Crash-injection calls this; the root is left for the
    /// caller to rewind to a durable one.
    pub fn drop_volatile(&mut self) {
        self.trie.drop_volatile();
    }

    /// Decoded-node cache `(hits, misses)` of the state trie (stats).
    pub fn trie_cache_stats(&self) -> (u64, u64) {
        self.trie.cache_stats()
    }

    /// Overlay flush counters `(nodes_flushed, nodes_dropped)` of the state
    /// trie (stats).
    pub fn trie_flush_stats(&self) -> (u64, u64) {
        (self.trie.nodes_flushed(), self.trie.nodes_dropped())
    }

    /// Seal a block: flush the trie's dirty-node overlay to storage as one
    /// write batch, keeping exactly the nodes reachable from the current
    /// root (plus everything committed earlier) and dropping the garbage
    /// interior roots that per-transaction application created. Every root
    /// recorded for historical queries must be committed via this call.
    pub fn commit_block(&mut self) -> Result<(), KvError> {
        self.trie.commit()
    }

    /// [`Self::commit_block`] plus raw metadata ops (durable block records,
    /// head pointers) riding the *same* atomic write batch — a crash can
    /// never separate a block's state flush from its chain metadata.
    pub fn commit_block_with_meta(
        &mut self,
        extras: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    ) -> Result<(), KvError> {
        self.trie.commit_with_extras(extras)
    }

    /// Validate a transaction against current state without applying it:
    /// the pool's admission check.
    pub fn validate(&mut self, tx: &Transaction) -> Result<(), TxInvalid> {
        let acct = self.account(&tx.from).map_err(|e| TxInvalid::Storage(e.to_string()))?;
        if acct.nonce != tx.nonce {
            return Err(TxInvalid::BadNonce { expected: acct.nonce, got: tx.nonce });
        }
        Ok(())
    }

    /// Apply one transaction on the current root. Returns `Err` when the
    /// transaction cannot be included at all (bad nonce / storage failure);
    /// `Ok(result)` otherwise, with `result.success == false` for included-
    /// but-failed executions (revert, out of gas, insufficient funds).
    pub fn apply_transaction(
        &mut self,
        tx: &Transaction,
        height: u64,
        vm: &Vm,
        tx_gas_limit: u64,
    ) -> Result<ExecResult, TxInvalid> {
        let storage = |e: KvError| TxInvalid::Storage(e.to_string());
        let mut sender = self.account(&tx.from).map_err(storage)?;
        if sender.nonce != tx.nonce {
            return Err(TxInvalid::BadNonce { expected: sender.nonce, got: tx.nonce });
        }
        sender.nonce += 1;
        // The nonce bump survives failure; everything else rolls back.
        self.put_account(&tx.from, &sender).map_err(storage)?;
        let nonce_only_root = self.trie.root();

        let fail = |state: &mut Self, err: String, gas: u64, peak: u64| {
            state.set_root(nonce_only_root);
            Ok(ExecResult { success: false, gas_used: gas, output: Vec::new(), vm_peak_mem: peak, error: Some(err) })
        };

        // Value transfer.
        if tx.value > 0 {
            if sender.balance < tx.value as i64 {
                return fail(self, "insufficient funds".into(), 0, 0);
            }
            sender.balance -= tx.value as i64;
            self.put_account(&tx.from, &sender).map_err(storage)?;
            let mut to = self.account(&tx.to).map_err(storage)?;
            to.balance += tx.value as i64;
            self.put_account(&tx.to, &to).map_err(storage)?;
        }

        // Contract deployment.
        if tx.is_deploy() {
            let addr = Address::contract(&tx.from, tx.nonce);
            match SvmContract::decode(&tx.payload) {
                Some(code) => {
                    self.install_contract(&addr, &code).map_err(storage)?;
                    return Ok(ExecResult {
                        success: true,
                        gas_used: 1000 + tx.payload.len() as u64,
                        output: addr.0.to_vec(),
                        vm_peak_mem: 0,
                        error: None,
                    });
                }
                None => return fail(self, "malformed contract".into(), 1000, 0),
            }
        }

        // Contract invocation.
        let callee = self.account(&tx.to).map_err(storage)?;
        if !callee.is_contract || tx.payload.is_empty() {
            // Plain transfer (the analytics preload path).
            return Ok(ExecResult { success: true, gas_used: 0, output: Vec::new(), vm_peak_mem: 0, error: None });
        }
        let Some(code) = self.contract_code(&tx.to).map_err(storage)? else {
            return fail(self, "missing contract code".into(), 0, 0);
        };
        let Some((method, args)) = decode_call(&tx.payload) else {
            return fail(self, "empty call payload".into(), 0, 0);
        };
        let Some(program) = code.method(method) else {
            return fail(self, format!("unknown method {method}"), 0, 0);
        };

        let mut host = BufferedHost {
            state: self,
            contract: tx.to,
            writes: BTreeMap::new(),
            transfers: Vec::new(),
            contract_balance: callee.balance + tx.value as i64,
            caller: tx.from,
            value: tx.value as i64,
            height,
            storage_error: None,
        };
        let out = vm.execute(program, args, tx_gas_limit, &mut host);
        let writes = std::mem::take(&mut host.writes);
        let transfers = std::mem::take(&mut host.transfers);
        if let Some(e) = host.storage_error.take() {
            return Err(TxInvalid::Storage(e));
        }
        if !out.success {
            let err = out
                .error
                .map(|e| e.to_string())
                .unwrap_or_else(|| "reverted".to_string());
            return fail(self, err, out.gas_used, out.peak_memory);
        }
        // Flush buffered effects.
        for (key, value) in writes {
            let skey = storage_key(&tx.to, &key);
            match value {
                Some(v) => self.trie.insert(&skey, &v).map_err(storage)?,
                None => self.trie.remove(&skey).map_err(storage)?,
            }
        }
        let mut paid = 0i64;
        for (to_bytes, amount) in &transfers {
            let to = Address(*to_bytes);
            let mut acct = self.account(&to).map_err(storage)?;
            acct.balance += amount;
            self.put_account(&to, &acct).map_err(storage)?;
            paid += amount;
        }
        if paid > 0 {
            let mut contract_acct = self.account(&tx.to).map_err(storage)?;
            contract_acct.balance -= paid;
            self.put_account(&tx.to, &contract_acct).map_err(storage)?;
        }
        Ok(ExecResult {
            success: true,
            gas_used: out.gas_used,
            output: out.return_data,
            vm_peak_mem: out.peak_memory,
            error: None,
        })
    }
}

/// VM host buffering all effects until the execution is known to succeed.
struct BufferedHost<'a, S: KvStore> {
    state: &'a mut AccountState<S>,
    contract: Address,
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    transfers: Vec<([u8; 20], i64)>,
    contract_balance: i64,
    caller: Address,
    value: i64,
    height: u64,
    storage_error: Option<String>,
}

impl<S: KvStore> Host for BufferedHost<'_, S> {
    fn storage_get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(buffered) = self.writes.get(key) {
            return buffered.clone();
        }
        match self.state.contract_storage(&self.contract, key) {
            Ok(v) => v,
            Err(e) => {
                self.storage_error = Some(e.to_string());
                None
            }
        }
    }

    fn storage_put(&mut self, key: &[u8], value: &[u8]) {
        self.writes.insert(key.to_vec(), Some(value.to_vec()));
    }

    fn storage_delete(&mut self, key: &[u8]) {
        self.writes.insert(key.to_vec(), None);
    }

    fn transfer(&mut self, to: &[u8], amount: i64) -> bool {
        if amount < 0 || to.len() != 20 || self.contract_balance < amount {
            return false;
        }
        self.contract_balance -= amount;
        self.transfers.push((to.try_into().expect("20 bytes"), amount));
        true
    }

    fn emit(&mut self, _topic: i64, _data: &[u8]) {}

    fn caller(&self) -> [u8; 20] {
        self.caller.0
    }

    fn call_value(&self) -> i64 {
        self.value
    }

    fn block_height(&self) -> u64 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_crypto::KeyPair;
    use bb_storage::MemStore;
    use bb_contracts::{smallbank, ycsb};

    fn state() -> AccountState<MemStore> {
        AccountState::new(MemStore::new())
    }

    fn signed(seed: u64, nonce: u64, to: Address, value: u64, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, value, payload)
    }

    fn deploy_ycsb(s: &mut AccountState<MemStore>) -> Address {
        let addr = Address::from_index(1000);
        s.install_contract(&addr, &ycsb::bundle().svm).unwrap();
        addr
    }

    #[test]
    fn account_encoding_round_trips() {
        let a = Account { balance: -5, nonce: 9, is_contract: true };
        assert_eq!(Account::decode(&a.encode()), a);
        assert_eq!(Account::decode(b"junk"), Account::default());
    }

    #[test]
    fn value_transfer_moves_balance_and_bumps_nonce() {
        let mut s = state();
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        let to = Address::from_index(2);
        s.credit(&from, 100).unwrap();
        let tx = signed(1, 0, to, 30, vec![]);
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap();
        assert!(r.success);
        assert_eq!(s.account(&from).unwrap().balance, 70);
        assert_eq!(s.account(&from).unwrap().nonce, 1);
        assert_eq!(s.account(&to).unwrap().balance, 30);
    }

    #[test]
    fn insufficient_funds_fails_but_bumps_nonce() {
        let mut s = state();
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        let tx = signed(1, 0, Address::from_index(2), 30, vec![]);
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap();
        assert!(!r.success);
        assert_eq!(s.account(&from).unwrap().nonce, 1);
        assert_eq!(s.account(&Address::from_index(2)).unwrap().balance, 0);
    }

    #[test]
    fn bad_nonce_rejected_without_state_change() {
        let mut s = state();
        let root = s.root();
        let tx = signed(1, 5, Address::from_index(2), 0, vec![]);
        let err = s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap_err();
        assert_eq!(err, TxInvalid::BadNonce { expected: 0, got: 5 });
        assert_eq!(s.root(), root);
        assert!(s.validate(&tx).is_err());
        let good = signed(1, 0, Address::from_index(2), 0, vec![]);
        assert!(s.validate(&good).is_ok());
    }

    #[test]
    fn contract_invocation_updates_contract_storage() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        let tx = signed(1, 0, contract, 0, ycsb::write_call(7, b"hello"));
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap();
        assert!(r.success, "{:?}", r.error);
        assert!(r.gas_used > 0);
        let read = signed(1, 1, contract, 0, ycsb::read_call(7));
        let r = s.apply_transaction(&read, 1, &Vm::default(), 10_000_000).unwrap();
        assert_eq!(r.output, b"hello");
        // The slot is visible under the contract's storage namespace.
        assert_eq!(
            s.contract_storage(&contract, &ycsb::record_key(7)).unwrap(),
            Some(b"hello".to_vec())
        );
    }

    #[test]
    fn reverted_execution_leaves_no_contract_writes() {
        let mut s = state();
        let contract = Address::from_index(1001);
        s.install_contract(&contract, &smallbank::bundle().svm).unwrap();
        // send_payment without funds reverts inside the VM.
        let tx = signed(1, 0, contract, 0, smallbank::send_payment_call(1, 2, 50));
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap();
        assert!(!r.success);
        assert_eq!(
            s.contract_storage(&contract, &smallbank::balance_key(smallbank::NS_CHECKING, 2))
                .unwrap(),
            None
        );
        // Nonce still bumped: the failed tx occupied its slot.
        let kp = KeyPair::from_seed(1);
        assert_eq!(s.account(&Address::from_public_key(&kp.public())).unwrap().nonce, 1);
    }

    #[test]
    fn out_of_gas_rolls_back() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        let tx = signed(1, 0, contract, 0, ycsb::write_call(7, &[9u8; 100]));
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 100).unwrap();
        assert!(!r.success);
        assert!(r.error.as_deref().unwrap_or("").contains("gas"));
        assert_eq!(s.contract_storage(&contract, &ycsb::record_key(7)).unwrap(), None);
    }

    #[test]
    fn deployment_via_transaction() {
        let mut s = state();
        let bundle = ycsb::bundle();
        let tx = signed(1, 0, Address::ZERO, 0, bundle.svm.encode());
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap();
        assert!(r.success);
        let addr = Address(r.output.clone().try_into().expect("20 bytes"));
        assert!(s.account(&addr).unwrap().is_contract);
        let call = signed(1, 1, addr, 0, ycsb::write_call(1, b"x"));
        assert!(s.apply_transaction(&call, 1, &Vm::default(), 10_000_000).unwrap().success);
    }

    #[test]
    fn historical_roots_answer_getbalance_at_block() {
        let mut s = state();
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        s.credit(&from, 1000).unwrap();
        let root_before = s.root();
        let tx = signed(1, 0, Address::from_index(9), 400, vec![]);
        s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap();
        assert_eq!(s.account(&from).unwrap().balance, 600);
        assert_eq!(s.account_at(root_before, &from).unwrap().balance, 1000);
    }

    #[test]
    fn commit_block_keeps_sealed_roots_and_drops_tx_garbage() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        s.commit_block().unwrap(); // genesis-ish seal
        // One multi-tx block: each apply materializes an intermediate root
        // that the next apply replaces.
        for i in 0..8u64 {
            let tx = signed(1, i, contract, 0, ycsb::write_call(i, b"payload"));
            assert!(s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap().success);
        }
        let sealed_root = s.root();
        s.commit_block().unwrap();
        let (flushed, dropped) = s.trie_flush_stats();
        assert!(dropped > 0, "per-tx interior roots must be dropped at seal");
        assert!(flushed > 0);
        // Mid-block rollback roots (failed tx) also stay consistent.
        let broke = signed(2, 0, contract, 0, ycsb::write_call(9, &[9u8; 100]));
        // Out of gas: included but failed, root = nonce-only.
        let r = s.apply_transaction(&broke, 2, &Vm::default(), 100).unwrap();
        assert!(!r.success);
        s.commit_block().unwrap();
        // The sealed root answers historical reads after garbage was dropped.
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        assert_eq!(s.account_at(sealed_root, &from).unwrap().nonce, 8);
    }

    #[test]
    fn doubler_transfers_pay_from_contract_balance() {
        let mut s = state();
        let contract = Address::from_index(1002);
        s.install_contract(&contract, &bb_contracts::doubler::bundle().svm).unwrap();
        // Fund the contract pot so payouts can clear.
        s.credit(&contract, 1000).unwrap();
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::from_public_key(&alice.public());
        let bob = KeyPair::from_seed(2);
        let t1 = Transaction::signed(&alice, 0, contract, 0, bb_contracts::doubler::enter_call(100));
        assert!(s.apply_transaction(&t1, 1, &Vm::default(), 10_000_000).unwrap().success);
        let t2 = Transaction::signed(&bob, 0, contract, 0, bb_contracts::doubler::enter_call(100));
        assert!(s.apply_transaction(&t2, 1, &Vm::default(), 10_000_000).unwrap().success);
        // Alice was paid 200 out of the contract's balance.
        assert_eq!(s.account(&alice_addr).unwrap().balance, 200);
        assert_eq!(s.account(&contract).unwrap().balance, 800);
    }
}
