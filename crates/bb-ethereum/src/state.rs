//! The account-model state machine shared by the EVM-like platforms.
//!
//! "An account in Ethereum has a balance as its state, and is updated upon
//! receiving a transaction. A special type of account, called smart
//! contract, contains executable code and private states." (Section 3.1.2)
//!
//! Accounts, contract code and contract storage all live in one
//! Merkle-Patricia trie keyed by:
//! - `addr` → encoded [`Account`],
//! - `addr ++ "#code"` → serialized [`SvmContract`],
//! - `addr ++ "#s" ++ key` → contract storage.
//!
//! Transaction application uses a *buffered* VM host: contract writes and
//! outbound transfers accumulate in an overlay and flush only on success,
//! giving the revert/out-of-gas rollback the paper describes for the EVM
//! (Section 3.1.3).

use bb_merkle::PatriciaTrie;
use bb_storage::{KvError, KvStore};
use bb_svm::{Host, Vm};
use bb_types::{Address, Transaction, TxId};
use blockbench::contract::{decode_call, SvmContract};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// A non-contract or contract account.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Account {
    /// Native currency balance.
    pub balance: i64,
    /// Next expected transaction nonce.
    pub nonce: u64,
    /// Does this account carry contract code?
    pub is_contract: bool,
}

impl Account {
    /// Canonical trie encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17);
        out.extend_from_slice(&self.balance.to_le_bytes());
        out.extend_from_slice(&self.nonce.to_le_bytes());
        out.push(u8::from(self.is_contract));
        out
    }

    /// Decode; malformed bytes yield a default account (trie corruption is
    /// caught earlier by hashes).
    pub fn decode(bytes: &[u8]) -> Account {
        if bytes.len() != 17 {
            return Account::default();
        }
        Account {
            balance: i64::from_le_bytes(bytes[..8].try_into().expect("8")),
            nonce: u64::from_le_bytes(bytes[8..16].try_into().expect("8")),
            is_contract: bytes[16] != 0,
        }
    }
}

fn code_key(addr: &Address) -> Vec<u8> {
    let mut k = addr.0.to_vec();
    k.extend_from_slice(b"#code");
    k
}

fn storage_key(addr: &Address, key: &[u8]) -> Vec<u8> {
    let mut k = addr.0.to_vec();
    k.extend_from_slice(b"#s");
    k.extend_from_slice(key);
    k
}

/// Why a transaction could not even be included in a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxInvalid {
    /// Nonce does not match the sender's account.
    BadNonce {
        /// Nonce the account expects.
        expected: u64,
        /// Nonce the transaction carried.
        got: u64,
    },
    /// Storage backend failure (Parity's in-memory cap, for instance).
    Storage(String),
}

impl std::fmt::Display for TxInvalid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxInvalid::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            TxInvalid::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

/// Outcome of applying an *included* transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecResult {
    /// Did the transfer + contract call succeed?
    pub success: bool,
    /// Gas consumed (0 for pure transfers with no contract call).
    pub gas_used: u64,
    /// Contract return data.
    pub output: Vec<u8>,
    /// Peak VM memory in bytes (CPUHeavy's memory model input).
    pub vm_peak_mem: u64,
    /// Human-readable failure cause, if any.
    pub error: Option<String>,
}

/// The account state machine over a trie backend.
pub struct AccountState<S: KvStore> {
    trie: PatriciaTrie<S>,
}

impl<S: KvStore> AccountState<S> {
    /// Empty state over `store`.
    pub fn new(store: S) -> Self {
        AccountState { trie: PatriciaTrie::new(store) }
    }

    /// Current state root (committed into block headers).
    pub fn root(&self) -> bb_crypto::Hash256 {
        self.trie.root()
    }

    /// Move the state view to a (historical) root.
    pub fn set_root(&mut self, root: bb_crypto::Hash256) {
        self.trie.set_root(root);
    }

    /// Read an account (default if absent).
    pub fn account(&mut self, addr: &Address) -> Result<Account, KvError> {
        Ok(self.trie.get(&addr.0)?.map(|b| Account::decode(&b)).unwrap_or_default())
    }

    /// Read an account at a historical root — Ethereum/Parity's
    /// `getBalance(account, block)` JSON-RPC (the Q2 analytics path).
    pub fn account_at(
        &mut self,
        root: bb_crypto::Hash256,
        addr: &Address,
    ) -> Result<Account, KvError> {
        Ok(self
            .trie
            .get_at(root, &addr.0)?
            .map(|b| Account::decode(&b))
            .unwrap_or_default())
    }

    /// Write an account.
    pub fn put_account(&mut self, addr: &Address, acct: &Account) -> Result<(), KvError> {
        self.trie.insert(&addr.0, &acct.encode())
    }

    /// Credit an account (genesis funding, PoA/PoW rewards, preloads).
    pub fn credit(&mut self, addr: &Address, amount: i64) -> Result<(), KvError> {
        let mut acct = self.account(addr)?;
        acct.balance += amount;
        self.put_account(addr, &acct)
    }

    /// Install contract code at `addr` (deployment fast-path shared by all
    /// nodes at setup time).
    pub fn install_contract(&mut self, addr: &Address, code: &SvmContract) -> Result<(), KvError> {
        let mut acct = self.account(addr)?;
        acct.is_contract = true;
        self.put_account(addr, &acct)?;
        self.trie.insert(&code_key(addr), &code.encode())
    }

    /// Fetch contract code.
    pub fn contract_code(&mut self, addr: &Address) -> Result<Option<SvmContract>, KvError> {
        Ok(self.trie.get(&code_key(addr))?.and_then(|b| SvmContract::decode(&b)))
    }

    /// Read a raw contract-storage slot (tests / analytics).
    pub fn contract_storage(
        &mut self,
        addr: &Address,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>, KvError> {
        self.trie.get(&storage_key(addr, key))
    }

    /// Borrow the backing store (stats).
    pub fn store(&self) -> &S {
        self.trie.store()
    }

    /// Mutably borrow the backing store (restart recovery scans).
    pub fn store_mut(&mut self) -> &mut S {
        self.trie.store_mut()
    }

    /// Drop everything volatile in the state trie — the uncommitted dirty
    /// overlay and the decoded-node cache — keeping only what the backing
    /// store holds. Crash-injection calls this; the root is left for the
    /// caller to rewind to a durable one.
    pub fn drop_volatile(&mut self) {
        self.trie.drop_volatile();
    }

    /// Decoded-node cache `(hits, misses)` of the state trie (stats).
    pub fn trie_cache_stats(&self) -> (u64, u64) {
        self.trie.cache_stats()
    }

    /// Overlay flush counters `(nodes_flushed, nodes_dropped)` of the state
    /// trie (stats).
    pub fn trie_flush_stats(&self) -> (u64, u64) {
        (self.trie.nodes_flushed(), self.trie.nodes_dropped())
    }

    /// Seal a block: flush the trie's dirty-node overlay to storage as one
    /// write batch, keeping exactly the nodes reachable from the current
    /// root (plus everything committed earlier) and dropping the garbage
    /// interior roots that per-transaction application created. Every root
    /// recorded for historical queries must be committed via this call.
    pub fn commit_block(&mut self) -> Result<(), KvError> {
        self.trie.commit()
    }

    /// [`Self::commit_block`] plus raw metadata ops (durable block records,
    /// head pointers) riding the *same* atomic write batch — a crash can
    /// never separate a block's state flush from its chain metadata.
    pub fn commit_block_with_meta(
        &mut self,
        extras: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    ) -> Result<(), KvError> {
        self.trie.commit_with_extras(extras)
    }

    /// Validate a transaction against current state without applying it:
    /// the pool's admission check.
    pub fn validate(&mut self, tx: &Transaction) -> Result<(), TxInvalid> {
        let acct = self.account(&tx.from).map_err(|e| TxInvalid::Storage(e.to_string()))?;
        if acct.nonce != tx.nonce {
            return Err(TxInvalid::BadNonce { expected: acct.nonce, got: tx.nonce });
        }
        Ok(())
    }

    /// Apply one transaction on the current root. Returns `Err` when the
    /// transaction cannot be included at all (bad nonce / storage failure);
    /// `Ok(result)` otherwise, with `result.success == false` for included-
    /// but-failed executions (revert, out of gas, insufficient funds).
    pub fn apply_transaction(
        &mut self,
        tx: &Transaction,
        height: u64,
        vm: &Vm,
        tx_gas_limit: u64,
    ) -> Result<ExecResult, TxInvalid> {
        apply_tx(self, tx, height, vm, tx_gas_limit)
    }
}

/// The state surface one transaction application needs, abstracted so the
/// *same* body runs in two modes: directly against the trie (serial
/// application, loser re-execution) and against a buffered speculative
/// view of the frozen pre-state ([`SpecView`]). One body means speculation
/// can never drift from serial semantics.
trait TxBackend {
    /// Rollback token for the "nonce bump survives failure" semantics.
    type Mark: Clone;
    fn kv_get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError>;
    fn kv_put(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError>;
    fn kv_del(&mut self, key: &[u8]) -> Result<(), KvError>;
    fn mark(&self) -> Self::Mark;
    fn rewind(&mut self, mark: &Self::Mark);
}

impl<S: KvStore> TxBackend for AccountState<S> {
    type Mark = bb_crypto::Hash256;
    fn kv_get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        self.trie.get(key)
    }
    fn kv_put(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        self.trie.insert(key, value)
    }
    fn kv_del(&mut self, key: &[u8]) -> Result<(), KvError> {
        self.trie.remove(key)
    }
    fn mark(&self) -> Self::Mark {
        self.trie.root()
    }
    fn rewind(&mut self, mark: &Self::Mark) {
        self.trie.set_root(*mark);
    }
}

fn read_account<B: TxBackend>(b: &mut B, addr: &Address) -> Result<Account, KvError> {
    Ok(b.kv_get(&addr.0)?.map(|x| Account::decode(&x)).unwrap_or_default())
}

fn write_account<B: TxBackend>(b: &mut B, addr: &Address, acct: &Account) -> Result<(), KvError> {
    b.kv_put(&addr.0, &acct.encode())
}

/// The transaction-application body shared by serial and speculative
/// execution (see [`TxBackend`]).
fn apply_tx<B: TxBackend>(
    b: &mut B,
    tx: &Transaction,
    height: u64,
    vm: &Vm,
    tx_gas_limit: u64,
) -> Result<ExecResult, TxInvalid> {
    let storage = |e: KvError| TxInvalid::Storage(e.to_string());
    let mut sender = read_account(b, &tx.from).map_err(storage)?;
    if sender.nonce != tx.nonce {
        return Err(TxInvalid::BadNonce { expected: sender.nonce, got: tx.nonce });
    }
    sender.nonce += 1;
    // The nonce bump survives failure; everything else rolls back.
    write_account(b, &tx.from, &sender).map_err(storage)?;
    let nonce_only = b.mark();

    let fail = |b: &mut B, err: String, gas: u64, peak: u64| {
        b.rewind(&nonce_only);
        Ok(ExecResult { success: false, gas_used: gas, output: Vec::new(), vm_peak_mem: peak, error: Some(err) })
    };

    // Value transfer.
    if tx.value > 0 {
        if sender.balance < tx.value as i64 {
            return fail(b, "insufficient funds".into(), 0, 0);
        }
        sender.balance -= tx.value as i64;
        write_account(b, &tx.from, &sender).map_err(storage)?;
        let mut to = read_account(b, &tx.to).map_err(storage)?;
        to.balance += tx.value as i64;
        write_account(b, &tx.to, &to).map_err(storage)?;
    }

    // Contract deployment.
    if tx.is_deploy() {
        let addr = Address::contract(&tx.from, tx.nonce);
        match SvmContract::decode(&tx.payload) {
            Some(code) => {
                let mut acct = read_account(b, &addr).map_err(storage)?;
                acct.is_contract = true;
                write_account(b, &addr, &acct).map_err(storage)?;
                b.kv_put(&code_key(&addr), &code.encode()).map_err(storage)?;
                return Ok(ExecResult {
                    success: true,
                    gas_used: 1000 + tx.payload.len() as u64,
                    output: addr.0.to_vec(),
                    vm_peak_mem: 0,
                    error: None,
                });
            }
            None => return fail(b, "malformed contract".into(), 1000, 0),
        }
    }

    // Contract invocation.
    let callee = read_account(b, &tx.to).map_err(storage)?;
    if !callee.is_contract || tx.payload.is_empty() {
        // Plain transfer (the analytics preload path).
        return Ok(ExecResult { success: true, gas_used: 0, output: Vec::new(), vm_peak_mem: 0, error: None });
    }
    let code = match b.kv_get(&code_key(&tx.to)).map_err(storage)? {
        Some(bytes) => SvmContract::decode(&bytes),
        None => None,
    };
    let Some(code) = code else {
        return fail(b, "missing contract code".into(), 0, 0);
    };
    let Some((method, args)) = decode_call(&tx.payload) else {
        return fail(b, "empty call payload".into(), 0, 0);
    };
    let Some(program) = code.method(method) else {
        return fail(b, format!("unknown method {method}"), 0, 0);
    };

    let mut host = BufferedHost {
        state: b,
        contract: tx.to,
        writes: BTreeMap::new(),
        transfers: Vec::new(),
        contract_balance: callee.balance + tx.value as i64,
        caller: tx.from,
        value: tx.value as i64,
        height,
        storage_error: None,
    };
    let out = vm.execute(program, args, tx_gas_limit, &mut host);
    let writes = std::mem::take(&mut host.writes);
    let transfers = std::mem::take(&mut host.transfers);
    if let Some(e) = host.storage_error.take() {
        return Err(TxInvalid::Storage(e));
    }
    if !out.success {
        let err = out
            .error
            .map(|e| e.to_string())
            .unwrap_or_else(|| "reverted".to_string());
        return fail(b, err, out.gas_used, out.peak_memory);
    }
    // Flush buffered effects.
    for (key, value) in writes {
        let skey = storage_key(&tx.to, &key);
        match value {
            Some(v) => b.kv_put(&skey, &v).map_err(storage)?,
            None => b.kv_del(&skey).map_err(storage)?,
        }
    }
    let mut paid = 0i64;
    for (to_bytes, amount) in &transfers {
        let to = Address(*to_bytes);
        let mut acct = read_account(b, &to).map_err(storage)?;
        acct.balance += amount;
        write_account(b, &to, &acct).map_err(storage)?;
        paid += amount;
    }
    if paid > 0 {
        let mut contract_acct = read_account(b, &tx.to).map_err(storage)?;
        contract_acct.balance -= paid;
        write_account(b, &tx.to, &contract_acct).map_err(storage)?;
    }
    Ok(ExecResult {
        success: true,
        gas_used: out.gas_used,
        output: out.return_data,
        vm_peak_mem: out.peak_memory,
        error: None,
    })
}

/// VM host buffering all effects until the execution is known to succeed.
struct BufferedHost<'a, B: TxBackend> {
    state: &'a mut B,
    contract: Address,
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    transfers: Vec<([u8; 20], i64)>,
    contract_balance: i64,
    caller: Address,
    value: i64,
    height: u64,
    storage_error: Option<String>,
}

impl<B: TxBackend> Host for BufferedHost<'_, B> {
    fn storage_get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(buffered) = self.writes.get(key) {
            return buffered.clone();
        }
        match self.state.kv_get(&storage_key(&self.contract, key)) {
            Ok(v) => v,
            Err(e) => {
                self.storage_error = Some(e.to_string());
                None
            }
        }
    }

    fn storage_put(&mut self, key: &[u8], value: &[u8]) {
        self.writes.insert(key.to_vec(), Some(value.to_vec()));
    }

    fn storage_delete(&mut self, key: &[u8]) {
        self.writes.insert(key.to_vec(), None);
    }

    fn transfer(&mut self, to: &[u8], amount: i64) -> bool {
        if amount < 0 || to.len() != 20 || self.contract_balance < amount {
            return false;
        }
        self.contract_balance -= amount;
        self.transfers.push((to.try_into().expect("20 bytes"), amount));
        true
    }

    fn emit(&mut self, _topic: i64, _data: &[u8]) {}

    fn caller(&self) -> [u8; 20] {
        self.caller.0
    }

    fn call_value(&self) -> i64 {
        self.value
    }

    fn block_height(&self) -> u64 {
        self.height
    }
}

/// The *logical* conflict-detection key for a trie key. Account records
/// (20-byte keys) map to `key ++ "@b"` — the balance/contract-flag facet.
/// Account **nonces** are deliberately not part of any logical key: the
/// nonce evolution of a block is exactly predictable from the pre-state
/// and the canonical order (see [`AccountState::execute_block`]'s prepass),
/// so same-sender chains never conflict with each other. Code and storage
/// keys carry `"#code"` / `"#s"` suffixes and cannot collide with `"@b"`.
fn logical_key(key: &[u8]) -> Vec<u8> {
    if key.len() == 20 {
        let mut k = key.to_vec();
        k.extend_from_slice(b"@b");
        k
    } else {
        key.to_vec()
    }
}

/// What one speculated transaction produced: its result, the logical keys
/// it read from the pre-state, its raw buffered writes (for the winner
/// commit) and the logical keys those writes touch (for the conflict
/// oracle).
struct SpecOutcome {
    result: Result<ExecResult, TxInvalid>,
    reads: Vec<Vec<u8>>,
    writes: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    logical_writes: Vec<Vec<u8>>,
}

/// A buffered, read-logging view of the frozen pre-state used during
/// speculation. All reads go through [`PatriciaTrie::get_frozen`] (no
/// cache mutation, no counters) so speculating a block serially or in
/// parallel leaves byte-identical trie state behind. Writes land in a
/// private overlay; nothing touches the shared trie.
struct SpecView<'a, 'b, S: KvStore> {
    base: &'a Mutex<&'b mut PatriciaTrie<S>>,
    /// The 20-byte account key of the transaction's sender.
    sender_key: Vec<u8>,
    /// How many earlier in-block transactions of the same sender precede
    /// this one — reads of the sender account report `base nonce + delta`
    /// so nonce checks see the state the serial schedule would show.
    nonce_delta: u64,
    /// Private write buffer (read-your-writes, committed only if clean).
    buf: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Cache of base reads — both to avoid re-locking and to classify
    /// account writes as balance-changing vs. nonce-only at the end.
    base_seen: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Logical keys read from the pre-state (not from `buf`).
    reads: BTreeSet<Vec<u8>>,
}

impl<S: KvStore> TxBackend for SpecView<'_, '_, S> {
    type Mark = BTreeMap<Vec<u8>, Option<Vec<u8>>>;

    fn kv_get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        if let Some(v) = self.buf.get(key) {
            return Ok(v.clone());
        }
        self.reads.insert(logical_key(key));
        if let Some(v) = self.base_seen.get(key) {
            return Ok(v.clone());
        }
        let mut v = self.base.lock().expect("base trie lock").get_frozen(key)?;
        if self.nonce_delta > 0 && key == &self.sender_key[..] {
            let mut acct = v.as_deref().map(Account::decode).unwrap_or_default();
            acct.nonce += self.nonce_delta;
            v = Some(acct.encode());
        }
        self.base_seen.insert(key.to_vec(), v.clone());
        Ok(v)
    }

    fn kv_put(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        self.buf.insert(key.to_vec(), Some(value.to_vec()));
        Ok(())
    }

    fn kv_del(&mut self, key: &[u8]) -> Result<(), KvError> {
        self.buf.insert(key.to_vec(), None);
        Ok(())
    }

    fn mark(&self) -> Self::Mark {
        self.buf.clone()
    }

    fn rewind(&mut self, mark: &Self::Mark) {
        // Reads and `base_seen` survive the rewind on purpose: the decision
        // to fail *depended* on them, so they stay conflict-relevant.
        self.buf = mark.clone();
    }
}

impl<S: KvStore> SpecView<'_, '_, S> {
    /// Classify the buffered writes and package the speculation outcome.
    /// Account writes whose balance and contract flag match the base value
    /// are nonce-only: they produce **no** logical write, so later readers
    /// of that account don't spuriously conflict with a same-sender chain.
    fn finish(self, result: Result<ExecResult, TxInvalid>) -> SpecOutcome {
        let mut writes = Vec::new();
        let mut logical_writes = Vec::new();
        if result.is_ok() {
            for (key, val) in &self.buf {
                if key.len() == 20 {
                    let new = val.as_deref().map(Account::decode).unwrap_or_default();
                    let base = self.base_seen.get(key);
                    let nonce_only = base.is_some_and(|b| {
                        let old = b.as_deref().map(Account::decode).unwrap_or_default();
                        old.balance == new.balance && old.is_contract == new.is_contract
                    });
                    if !nonce_only {
                        logical_writes.push(logical_key(key));
                    }
                } else {
                    logical_writes.push(key.clone());
                }
                writes.push((key.clone(), val.clone()));
            }
        }
        SpecOutcome { result, reads: self.reads.into_iter().collect(), writes, logical_writes }
    }
}

/// Loser path: a re-execution against the live trie that records which
/// keys it wrote, so later transactions' conflict checks see them.
struct RecordingState<'a, S: KvStore> {
    inner: &'a mut AccountState<S>,
    writes: BTreeSet<Vec<u8>>,
}

impl<S: KvStore> TxBackend for RecordingState<'_, S> {
    type Mark = bb_crypto::Hash256;
    fn kv_get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        self.inner.trie.get(key)
    }
    fn kv_put(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        // Nonce-only account writes produce no logical write, mirroring
        // `SpecView::finish`: if the balance/contract facet the put leaves
        // behind differs from the pre-block value, some put along the way
        // changed it and recorded the key. Without this, a single loser's
        // nonce bump marks its sender's `@b` facet written and every later
        // same-sender transaction (which reads it for the nonce check)
        // cascades into the loser path.
        let nonce_only = key.len() == 20
            && self.inner.trie.get(key)?.is_some_and(|prior| {
                let old = Account::decode(&prior);
                let new = Account::decode(value);
                old.balance == new.balance && old.is_contract == new.is_contract
            });
        if !nonce_only {
            self.writes.insert(key.to_vec());
        }
        self.inner.trie.insert(key, value)
    }
    fn kv_del(&mut self, key: &[u8]) -> Result<(), KvError> {
        self.writes.insert(key.to_vec());
        self.inner.trie.remove(key)
    }
    fn mark(&self) -> Self::Mark {
        self.inner.trie.root()
    }
    fn rewind(&mut self, mark: &Self::Mark) {
        // Rewound keys stay recorded: conservative but deterministic.
        self.inner.trie.set_root(*mark);
    }
}

/// What [`AccountState::execute_block`] hands back to the chain layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockExecOutcome {
    /// `(tx id, success)` per transaction, canonical order — exactly what
    /// the classic serial loop would have recorded.
    pub receipts: Vec<(TxId, bool)>,
    /// Transactions that speculated against stale state and re-executed.
    pub conflicts: u64,
    /// Serial execution charge in µs (what the simulation bills — identical
    /// to the pre-executor accounting).
    pub serial_us: u64,
    /// Modeled parallel makespan in µs (see `bb_exec::model_block`).
    pub modeled_us: u64,
}

impl<S: KvStore> AccountState<S> {
    /// Execute a sealed block's transactions with optimistic intra-block
    /// parallelism: speculate every transaction against the frozen
    /// pre-state on `bb_exec::resolved_threads()` workers, then commit in
    /// canonical order with first-writer-wins conflict detection; losers
    /// re-execute serially at their canonical slot. The committed state,
    /// receipts, conflict count and trie counters are byte-identical
    /// between `BB_SERIAL_EXEC=1` and any thread count, because
    /// speculation is side-effect-free and the commit phase is canonical.
    ///
    /// `cost_us` converts a transaction's gas into the platform's modeled
    /// execution time in µs (callers pass their `EvmCosts` formula).
    pub fn execute_block(
        &mut self,
        txs: &[Arc<Transaction>],
        height: u64,
        vm: &Vm,
        tx_gas_limit: u64,
        cost_us: impl Fn(u64) -> u64 + Sync,
    ) -> BlockExecOutcome
    where
        S: Send,
    {
        let threads = bb_exec::resolved_threads();

        // Nonce prepass: the serial schedule's nonce evolution is exactly
        // predictable from the pre-state (nonce-valid transactions bump by
        // one even when execution fails; invalid ones don't bump at all).
        // Each transaction's speculative view shifts its sender's nonce by
        // the number of in-block predecessors, which is why same-sender
        // chains carry no read-write conflicts.
        let mut nonces: BTreeMap<[u8; 20], (u64, u64)> = BTreeMap::new();
        let mut deltas = Vec::with_capacity(txs.len());
        for tx in txs {
            if !nonces.contains_key(&tx.from.0) {
                match self.trie.get_frozen(&tx.from.0) {
                    Ok(v) => {
                        let n = v.map(|b| Account::decode(&b)).unwrap_or_default().nonce;
                        nonces.insert(tx.from.0, (n, n));
                    }
                    // Storage failure before anything ran: fall back to the
                    // plain serial schedule (still deterministic).
                    Err(_) => return self.execute_block_serial(txs, height, vm, tx_gas_limit, &cost_us),
                }
            }
            let (base, cur) = nonces.get_mut(&tx.from.0).expect("prepass entry");
            deltas.push(*cur - *base);
            if tx.nonce == *cur {
                *cur += 1;
            }
        }

        // Phase 1 — speculate. The trie is behind a mutex only so worker
        // threads can share it; `get_frozen` never mutates anything, so
        // lock order cannot influence the outcome.
        let outcomes: Vec<SpecOutcome> = {
            let base = Mutex::new(&mut self.trie);
            bb_exec::speculate(txs.len(), threads, |i| {
                let tx = &txs[i];
                let mut view = SpecView {
                    base: &base,
                    sender_key: tx.from.0.to_vec(),
                    nonce_delta: deltas[i],
                    buf: BTreeMap::new(),
                    base_seen: BTreeMap::new(),
                    reads: BTreeSet::new(),
                };
                let result = apply_tx(&mut view, tx, height, vm, tx_gas_limit);
                view.finish(result)
            })
        };

        // Phase 2 — canonical-order commit with first-writer-wins.
        let mut committed = bb_exec::KeySet::new();
        let mut receipts = Vec::with_capacity(txs.len());
        let mut conflicts = 0u64;
        let mut winner_us = 0u64;
        let mut loser_us = Vec::new();
        let mut spec_us = Vec::with_capacity(txs.len());
        for (tx, spec) in txs.iter().zip(outcomes) {
            spec_us.push(match &spec.result {
                Ok(r) => cost_us(r.gas_used),
                Err(_) => 0,
            });
            // Speculated storage errors always take the serial path: the
            // live trie, not the snapshot, owns error semantics.
            let forced = matches!(spec.result, Err(TxInvalid::Storage(_)));
            if !forced && !committed.conflicts(&spec.reads) {
                match self.commit_winner(tx, &spec) {
                    Ok(()) => {
                        committed.record(spec.logical_writes);
                        match &spec.result {
                            Ok(r) => {
                                winner_us += cost_us(r.gas_used);
                                receipts.push((tx.id(), r.success));
                            }
                            Err(_) => receipts.push((tx.id(), false)),
                        }
                        continue;
                    }
                    // Mid-commit storage failure: demote to the loser path,
                    // whose re-execution defines the outcome.
                    Err(_) => {}
                }
            }
            conflicts += 1;
            let mut rec = RecordingState { inner: self, writes: BTreeSet::new() };
            let result = apply_tx(&mut rec, tx, height, vm, tx_gas_limit);
            let keys = rec.writes;
            committed.record(keys.iter().map(|k| logical_key(k)));
            match result {
                Ok(r) => {
                    loser_us.push(cost_us(r.gas_used));
                    receipts.push((tx.id(), r.success));
                }
                Err(_) => receipts.push((tx.id(), false)),
            }
        }

        let cost = bb_exec::model_block(&spec_us, winner_us, &loser_us);
        BlockExecOutcome {
            receipts,
            conflicts,
            serial_us: cost.serial_us,
            modeled_us: cost.modeled_us,
        }
    }

    /// Apply a clean speculation's buffered writes. Account records merge
    /// rather than overwrite: balance and contract flag come from the
    /// speculation (base-accurate, because the transaction was clean), the
    /// nonce comes from the live trie so bumps by earlier same-sender
    /// transactions survive, plus one for this transaction's own sender.
    fn commit_winner(&mut self, tx: &Transaction, spec: &SpecOutcome) -> Result<(), KvError> {
        for (key, val) in &spec.writes {
            if key.len() == 20 {
                let new = val.as_deref().map(Account::decode).unwrap_or_default();
                let mut cur =
                    self.trie.get(key)?.map(|b| Account::decode(&b)).unwrap_or_default();
                cur.balance = new.balance;
                cur.is_contract = new.is_contract;
                if key[..] == tx.from.0 {
                    cur.nonce += 1;
                }
                self.trie.insert(key, &cur.encode())?;
            } else {
                match val {
                    Some(v) => self.trie.insert(key, v)?,
                    None => self.trie.remove(key)?,
                }
            }
        }
        Ok(())
    }

    /// The executor's deterministic fallback: the classic serial loop,
    /// reported as zero conflicts and a modeled time equal to serial.
    fn execute_block_serial(
        &mut self,
        txs: &[Arc<Transaction>],
        height: u64,
        vm: &Vm,
        tx_gas_limit: u64,
        cost_us: &impl Fn(u64) -> u64,
    ) -> BlockExecOutcome {
        let mut receipts = Vec::with_capacity(txs.len());
        let mut serial_us = 0u64;
        for tx in txs {
            match apply_tx(self, tx, height, vm, tx_gas_limit) {
                Ok(r) => {
                    serial_us += cost_us(r.gas_used);
                    receipts.push((tx.id(), r.success));
                }
                Err(_) => receipts.push((tx.id(), false)),
            }
        }
        BlockExecOutcome { receipts, conflicts: 0, serial_us, modeled_us: serial_us }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_crypto::KeyPair;
    use bb_storage::MemStore;
    use bb_contracts::{smallbank, ycsb};

    fn state() -> AccountState<MemStore> {
        AccountState::new(MemStore::new())
    }

    fn signed(seed: u64, nonce: u64, to: Address, value: u64, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, value, payload)
    }

    fn deploy_ycsb(s: &mut AccountState<MemStore>) -> Address {
        let addr = Address::from_index(1000);
        s.install_contract(&addr, &ycsb::bundle().svm).unwrap();
        addr
    }

    #[test]
    fn account_encoding_round_trips() {
        let a = Account { balance: -5, nonce: 9, is_contract: true };
        assert_eq!(Account::decode(&a.encode()), a);
        assert_eq!(Account::decode(b"junk"), Account::default());
    }

    #[test]
    fn value_transfer_moves_balance_and_bumps_nonce() {
        let mut s = state();
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        let to = Address::from_index(2);
        s.credit(&from, 100).unwrap();
        let tx = signed(1, 0, to, 30, vec![]);
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap();
        assert!(r.success);
        assert_eq!(s.account(&from).unwrap().balance, 70);
        assert_eq!(s.account(&from).unwrap().nonce, 1);
        assert_eq!(s.account(&to).unwrap().balance, 30);
    }

    #[test]
    fn insufficient_funds_fails_but_bumps_nonce() {
        let mut s = state();
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        let tx = signed(1, 0, Address::from_index(2), 30, vec![]);
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap();
        assert!(!r.success);
        assert_eq!(s.account(&from).unwrap().nonce, 1);
        assert_eq!(s.account(&Address::from_index(2)).unwrap().balance, 0);
    }

    #[test]
    fn bad_nonce_rejected_without_state_change() {
        let mut s = state();
        let root = s.root();
        let tx = signed(1, 5, Address::from_index(2), 0, vec![]);
        let err = s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap_err();
        assert_eq!(err, TxInvalid::BadNonce { expected: 0, got: 5 });
        assert_eq!(s.root(), root);
        assert!(s.validate(&tx).is_err());
        let good = signed(1, 0, Address::from_index(2), 0, vec![]);
        assert!(s.validate(&good).is_ok());
    }

    #[test]
    fn contract_invocation_updates_contract_storage() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        let tx = signed(1, 0, contract, 0, ycsb::write_call(7, b"hello"));
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap();
        assert!(r.success, "{:?}", r.error);
        assert!(r.gas_used > 0);
        let read = signed(1, 1, contract, 0, ycsb::read_call(7));
        let r = s.apply_transaction(&read, 1, &Vm::default(), 10_000_000).unwrap();
        assert_eq!(r.output, b"hello");
        // The slot is visible under the contract's storage namespace.
        assert_eq!(
            s.contract_storage(&contract, &ycsb::record_key(7)).unwrap(),
            Some(b"hello".to_vec())
        );
    }

    #[test]
    fn reverted_execution_leaves_no_contract_writes() {
        let mut s = state();
        let contract = Address::from_index(1001);
        s.install_contract(&contract, &smallbank::bundle().svm).unwrap();
        // send_payment without funds reverts inside the VM.
        let tx = signed(1, 0, contract, 0, smallbank::send_payment_call(1, 2, 50));
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap();
        assert!(!r.success);
        assert_eq!(
            s.contract_storage(&contract, &smallbank::balance_key(smallbank::NS_CHECKING, 2))
                .unwrap(),
            None
        );
        // Nonce still bumped: the failed tx occupied its slot.
        let kp = KeyPair::from_seed(1);
        assert_eq!(s.account(&Address::from_public_key(&kp.public())).unwrap().nonce, 1);
    }

    #[test]
    fn out_of_gas_rolls_back() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        let tx = signed(1, 0, contract, 0, ycsb::write_call(7, &[9u8; 100]));
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 100).unwrap();
        assert!(!r.success);
        assert!(r.error.as_deref().unwrap_or("").contains("gas"));
        assert_eq!(s.contract_storage(&contract, &ycsb::record_key(7)).unwrap(), None);
    }

    #[test]
    fn deployment_via_transaction() {
        let mut s = state();
        let bundle = ycsb::bundle();
        let tx = signed(1, 0, Address::ZERO, 0, bundle.svm.encode());
        let r = s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap();
        assert!(r.success);
        let addr = Address(r.output.clone().try_into().expect("20 bytes"));
        assert!(s.account(&addr).unwrap().is_contract);
        let call = signed(1, 1, addr, 0, ycsb::write_call(1, b"x"));
        assert!(s.apply_transaction(&call, 1, &Vm::default(), 10_000_000).unwrap().success);
    }

    #[test]
    fn historical_roots_answer_getbalance_at_block() {
        let mut s = state();
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        s.credit(&from, 1000).unwrap();
        let root_before = s.root();
        let tx = signed(1, 0, Address::from_index(9), 400, vec![]);
        s.apply_transaction(&tx, 1, &Vm::default(), 1_000_000).unwrap();
        assert_eq!(s.account(&from).unwrap().balance, 600);
        assert_eq!(s.account_at(root_before, &from).unwrap().balance, 1000);
    }

    #[test]
    fn commit_block_keeps_sealed_roots_and_drops_tx_garbage() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        s.commit_block().unwrap(); // genesis-ish seal
        // One multi-tx block: each apply materializes an intermediate root
        // that the next apply replaces.
        for i in 0..8u64 {
            let tx = signed(1, i, contract, 0, ycsb::write_call(i, b"payload"));
            assert!(s.apply_transaction(&tx, 1, &Vm::default(), 10_000_000).unwrap().success);
        }
        let sealed_root = s.root();
        s.commit_block().unwrap();
        let (flushed, dropped) = s.trie_flush_stats();
        assert!(dropped > 0, "per-tx interior roots must be dropped at seal");
        assert!(flushed > 0);
        // Mid-block rollback roots (failed tx) also stay consistent.
        let broke = signed(2, 0, contract, 0, ycsb::write_call(9, &[9u8; 100]));
        // Out of gas: included but failed, root = nonce-only.
        let r = s.apply_transaction(&broke, 2, &Vm::default(), 100).unwrap();
        assert!(!r.success);
        s.commit_block().unwrap();
        // The sealed root answers historical reads after garbage was dropped.
        let kp = KeyPair::from_seed(1);
        let from = Address::from_public_key(&kp.public());
        assert_eq!(s.account_at(sealed_root, &from).unwrap().nonce, 8);
    }

    fn run_block_classic(
        s: &mut AccountState<MemStore>,
        txs: &[Arc<Transaction>],
    ) -> Vec<(TxId, bool)> {
        txs.iter()
            .map(|tx| match s.apply_transaction(tx, 1, &Vm::default(), 10_000_000) {
                Ok(r) => (tx.id(), r.success),
                Err(_) => (tx.id(), false),
            })
            .collect()
    }

    /// Two identically seeded states, a block mixing same-sender chains,
    /// cross-account balance conflicts, contract read-after-write, a bad
    /// nonce and an out-of-gas revert. The optimistic executor must land
    /// on the classic serial loop's exact root and receipts.
    #[test]
    fn executor_matches_classic_serial_loop() {
        let alice = KeyPair::from_seed(1);
        let bob = KeyPair::from_seed(2);
        let carol = KeyPair::from_seed(3);
        let carol_addr = Address::from_public_key(&carol.public());
        let seed = |s: &mut AccountState<MemStore>| {
            let contract = deploy_ycsb(s);
            s.credit(&Address::from_public_key(&alice.public()), 1000).unwrap();
            s.credit(&Address::from_public_key(&bob.public()), 1000).unwrap();
            // Carol starts broke: her send only clears if Bob's pays first.
            s.commit_block().unwrap();
            contract
        };
        let mut a = state();
        let mut b = state();
        let contract = seed(&mut a);
        assert_eq!(seed(&mut b), contract);
        assert_eq!(a.root(), b.root());

        let txs: Vec<Arc<Transaction>> = vec![
            // Same-sender chain: three YCSB writes, disjoint keys — no
            // conflicts despite sharing the sender account.
            Arc::new(Transaction::signed(&alice, 0, contract, 0, ycsb::write_call(1, b"a1"))),
            Arc::new(Transaction::signed(&alice, 1, contract, 0, ycsb::write_call(2, b"a2"))),
            Arc::new(Transaction::signed(&alice, 2, contract, 0, ycsb::write_call(3, b"a3"))),
            // Bob funds Carol; Carol spends it in the same block. Carol's
            // speculation sees her base balance (0) and must re-execute.
            Arc::new(Transaction::signed(&bob, 0, carol_addr, 300, vec![])),
            Arc::new(Transaction::signed(&carol, 0, Address::from_index(9), 250, vec![])),
            // Contract read-after-write on key 1: speculates against the
            // pre-state, conflicts with Alice's committed write.
            Arc::new(Transaction::signed(&bob, 1, contract, 0, ycsb::read_call(1))),
            // Nonce gap: rejected identically in both schedules.
            Arc::new(Transaction::signed(&bob, 7, contract, 0, ycsb::write_call(4, b"x"))),
            // Out of gas (tiny limit applies to the whole block here, so
            // use a write too large to ever succeed instead).
            Arc::new(Transaction::signed(&alice, 3, contract, 0, ycsb::write_call(5, &[9; 100_000]))),
        ];

        let classic = run_block_classic(&mut a, &txs);
        let out = b.execute_block(&txs, 1, &Vm::default(), 10_000_000, |g| g.max(1000));
        assert_eq!(out.receipts, classic);
        assert_eq!(a.root(), b.root(), "executor must land on the serial root");
        // Carol's spend cleared (via re-execution), the read conflicted.
        assert!(out.receipts[4].1, "funded-in-block spend must succeed");
        assert!(out.conflicts >= 2, "expected Carol + read-after-write conflicts, got {}", out.conflicts);
        assert!(out.serial_us > 0);
        assert!(out.modeled_us <= out.serial_us);

        // Same block through a second executor state: byte-identical
        // regardless of scheduling (conflict detection is schedule-free).
        let mut c = state();
        seed(&mut c);
        let out2 = c.execute_block(&txs, 1, &Vm::default(), 10_000_000, |g| g.max(1000));
        assert_eq!(out2.receipts, out.receipts);
        assert_eq!(out2.conflicts, out.conflicts);
        assert_eq!(c.root(), b.root());
    }

    /// A conflict-free block models faster than serial; a fully conflicted
    /// one degrades gracefully to exactly serial (never below 1.0×).
    #[test]
    fn executor_speedup_model_bounds() {
        let mut s = state();
        let contract = deploy_ycsb(&mut s);
        s.commit_block().unwrap();
        let disjoint: Vec<Arc<Transaction>> = (0..8)
            .map(|i| {
                Arc::new(Transaction::signed(
                    &KeyPair::from_seed(100 + i),
                    0,
                    contract,
                    0,
                    ycsb::write_call(i, b"v"),
                ))
            })
            .collect();
        let out = s.execute_block(&disjoint, 1, &Vm::default(), 10_000_000, |g| g.max(1000));
        assert_eq!(out.conflicts, 0);
        assert!(out.receipts.iter().all(|(_, ok)| *ok));
        assert!(
            out.modeled_us * 2 <= out.serial_us,
            "8 disjoint txs over 4 modeled lanes must speed up ≥2×: {} vs {}",
            out.modeled_us,
            out.serial_us
        );

        // Every tx reads the same key another tx wrote → all but the first
        // writer re-execute; the model caps at serial.
        let mut s2 = state();
        let contract2 = deploy_ycsb(&mut s2);
        s2.commit_block().unwrap();
        let hot: Vec<Arc<Transaction>> = (0..6)
            .map(|i| {
                let call = if i == 0 { ycsb::write_call(7, b"hot") } else { ycsb::read_call(7) };
                Arc::new(Transaction::signed(&KeyPair::from_seed(200 + i), 0, contract2, 0, call))
            })
            .collect();
        let out = s2.execute_block(&hot, 1, &Vm::default(), 10_000_000, |g| g.max(1000));
        assert!(out.conflicts >= 5, "hot-key readers must all re-execute, got {}", out.conflicts);
        assert!(out.modeled_us <= out.serial_us);
        assert!(out.modeled_us > 0);
    }

    #[test]
    fn doubler_transfers_pay_from_contract_balance() {
        let mut s = state();
        let contract = Address::from_index(1002);
        s.install_contract(&contract, &bb_contracts::doubler::bundle().svm).unwrap();
        // Fund the contract pot so payouts can clear.
        s.credit(&contract, 1000).unwrap();
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::from_public_key(&alice.public());
        let bob = KeyPair::from_seed(2);
        let t1 = Transaction::signed(&alice, 0, contract, 0, bb_contracts::doubler::enter_call(100));
        assert!(s.apply_transaction(&t1, 1, &Vm::default(), 10_000_000).unwrap().success);
        let t2 = Transaction::signed(&bob, 0, contract, 0, bb_contracts::doubler::enter_call(100));
        assert!(s.apply_transaction(&t2, 1, &Vm::default(), 10_000_000).unwrap().success);
        // Alice was paid 200 out of the contract's balance.
        assert_eq!(s.account(&alice_addr).unwrap().balance, 200);
        assert_eq!(s.account(&contract).unwrap().balance, 800);
    }
}
