//! The Ethereum-like platform (geth v1.4.18 stand-in).
//!
//! Stack, top to bottom (Figure 1 / Section 3.1 of the paper):
//! - **consensus**: proof-of-work modelled as exponential mining races over
//!   virtual time, heaviest-chain fork choice, super-linear difficulty
//!   growth with network size, 2-block (~5 s) confirmation depth;
//! - **data model**: accounts in a Merkle-Patricia trie persisted to an LSM
//!   store (the LevelDB stand-in) — every block commits a new state root,
//!   and historical roots stay queryable (`getBalance(acct, block)`);
//! - **execution**: the gas-metered SVM with Ethereum-grade cost constants
//!   (slow interpreter, heavy per-element memory overhead — Figure 11).
//!
//! The [`state`] module (accounts, buffered VM host, transaction
//! application) is platform-generic over its storage backend and is reused
//! by `bb-parity`, which swaps PoW for authority-round and the LSM trie
//! backend for a capped in-memory store.

pub mod chain;
pub mod config;
pub mod state;

pub use chain::EthereumChain;
pub use config::{EthConfig, EvmCosts};
