//! The Ethereum-like network world and its `BlockchainConnector`.
//!
//! Every server node runs the full stack: a transaction pool fed by client
//! RPC and probabilistic gossip, an exponential-race miner, full block
//! validation by re-execution, heaviest-chain fork choice with reorgs (the
//! tx pool re-adopts transactions from abandoned branches), and a
//! Merkle-Patricia state trie over a private LSM store. Node 0 doubles as
//! the driver's RPC endpoint: it serves `getLatestBlock(h)` from its view of
//! the confirmed chain (head minus `confirm_depth`), block/state queries,
//! and the read-only contract path.
//!
//! Sharded: each server is a lane of a [`ShardedEngine`] and owns its own
//! RNG stream (mining races, gossip coin flips), LSM store and trie, so
//! block validation on different nodes runs on different cores while the
//! run stays byte-identical to the serial path (DESIGN.md §5).

use crate::config::EthConfig;
use crate::state::{AccountState, TxInvalid};
use bb_consensus::pow::{BlockTree, InsertOutcome};
use bb_crypto::Hash256;
use bb_merkle::merkle_root;
use bb_net::Network;
use bb_sim::{
    CpuMeter, Effects, ShardedEngine, ShardedWorld, SimDuration, SimRng, SimTime,
};
use bb_storage::{FaultVfs, KvStore, LsmConfig, LsmStore};
use bb_svm::{Vm, VmConfig};
use bb_types::{
    Address, Block, BlockHeader, BlockSummary, Encoder, NodeId, Transaction, TxId,
};
use blockbench::connector::{
    BlockchainConnector, DirectExec, Fault, PlatformStats, Query, QueryError, QueryResult,
};
use blockbench::contract::ContractBundle;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Events of the Ethereum world.
#[derive(Debug, Clone)]
pub enum EthEvent {
    /// A miner's exponential race fired.
    Mine {
        /// The lucky miner.
        miner: NodeId,
        /// Race generation; stale races are ignored.
        generation: u64,
    },
    /// A transaction reached a node (client RPC or peer gossip).
    TxArrive {
        /// Receiving node.
        to: NodeId,
        /// The transaction.
        tx: Arc<Transaction>,
        /// Came from a peer (don't re-gossip) or from a client.
        gossiped: bool,
    },
    /// A block reached a node.
    BlockArrive {
        /// Receiving node.
        to: NodeId,
        /// The block body.
        block: Arc<Block>,
        /// Peer that sent it (for parent fetches).
        from: NodeId,
    },
    /// A node asks a peer for a missing ancestor block.
    BlockRequest {
        /// Peer being asked.
        to: NodeId,
        /// Wanted block id.
        wanted: Hash256,
        /// Asking node.
        from: NodeId,
    },
    /// A restarted node asks a peer for its current head block; the reply
    /// (a `BlockArrive`) seeds the orphan walk-back that downloads the gap.
    HeadRequest {
        /// Peer being asked.
        to: NodeId,
        /// Recovering node.
        from: NodeId,
    },
    /// A resyncing node asks a peer for the next snapshot state chunk:
    /// live `(key, value)` pairs with key > `after`, served from the peer's
    /// durable store (trie nodes are content-addressed and block records
    /// ride in the same keyspace, so raw chunks rebuild chain + state).
    SnapshotRequest {
        /// Peer being asked.
        to: NodeId,
        /// Recovering node.
        from: NodeId,
        /// Resume cursor: last key already transferred.
        after: Option<Vec<u8>>,
    },
    /// One bounded snapshot chunk; `done` means the key space is exhausted.
    SnapshotChunk {
        /// Recovering node.
        to: NodeId,
        /// Serving peer (next chunk is requested from it).
        from: NodeId,
        /// Live pairs in key order.
        entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
        /// Keyspace exhausted?
        done: bool,
    },
}

struct EthNode {
    state: AccountState<LsmStore>,
    tree: BlockTree,
    /// Block bodies by id (genesis included).
    bodies: HashMap<Hash256, Arc<Block>>,
    /// Post-state root per block id.
    roots: HashMap<Hash256, Hash256>,
    /// Receipts (tx id, success) per block id.
    receipts: HashMap<Hash256, Vec<(TxId, bool)>>,
    /// Pending transactions in arrival order.
    pool: VecDeque<Arc<Transaction>>,
    pool_ids: HashSet<TxId>,
    /// Head height at admission, per pooled transaction — the age-out
    /// clock for future-nonced entries (`EthConfig::pool_evict_blocks`).
    pool_admitted: HashMap<TxId, u64>,
    /// Everything ever seen (suppresses gossip loops).
    seen: HashSet<TxId>,
    /// Blocks whose transactions were pruned from the pool — only blocks
    /// that joined this node's main chain. A transaction in a side block
    /// that never wins stays in the pool; pruning on mere validation would
    /// lose it for good when the fork is abandoned without a reorg through
    /// our head.
    pruned: HashSet<Hash256>,
    cpu: CpuMeter,
    /// This node's private randomness: mining race draws and gossip coin
    /// flips. Lane-local so parallel nodes never contend on one stream.
    rng: SimRng,
    mine_generation: u64,
    crashed: bool,
    /// Set while a restarted node is catching up from peers; cleared (into
    /// `recovery_ms`) once its head reaches the sync target.
    restarted_at: Option<SimTime>,
    /// Peer head height learned from the first post-restart block arrival.
    sync_target: Option<u64>,
    /// Set while a chunked snapshot transfer is closing the gap; block
    /// adoption and mining are suppressed until the transfer lands.
    snapshot_syncing: bool,
    /// Snapshot chunks received across this node's resyncs.
    snapshot_chunks: u64,
    /// Payload bytes of those chunks.
    snapshot_bytes: u64,
    /// Longest completed crash→caught-up recovery on this node, virtual ms.
    recovery_ms: u64,
    /// Blocks received from peers while catching up after a restart.
    resync_blocks: u64,
    /// Transactions that speculated against stale state and re-executed
    /// (optimistic block executor).
    exec_conflicts: u64,
    /// Serial execution charge accumulated by the block executor, µs.
    exec_serial_us: u64,
    /// Modeled parallel makespan of the same blocks, µs.
    exec_modeled_us: u64,
    /// Bytes of those blocks.
    resync_bytes: u64,
    /// WAL records replayed across this node's restarts.
    wal_replayed: u64,
    /// Torn WAL tails truncated across this node's restarts.
    wal_truncated: u64,
    /// Observer state — populated only on node 0.
    confirmed: Vec<BlockSummary>,
    confirmed_height: u64,
}

impl EthNode {
    fn enqueue(&mut self, tx: Arc<Transaction>) -> bool {
        if !self.seen.insert(tx.id()) {
            return false;
        }
        self.pool_ids.insert(tx.id());
        self.pool_admitted.insert(tx.id(), self.tree.head_height());
        self.pool.push_back(tx);
        true
    }
}

/// Read-only context shared by every lane.
struct EthCtx {
    config: EthConfig,
    vm: Vm,
}

/// The sharded-world marker type for Ethereum.
struct EthWorld;

/// The Ethereum-like platform.
pub struct EthereumChain {
    config: EthConfig,
    engine: ShardedEngine<EthWorld>,
    network: Network,
    started: bool,
    mem_peak: u64,
}

/// Observer counter: network-wide count of blocks ever mined (forks
/// included).
const BLOCKS_MINED: usize = 0;

impl ShardedWorld for EthWorld {
    type Event = EthEvent;
    type Node = EthNode;
    type Ctx = EthCtx;

    fn route(_ctx: &EthCtx, event: &EthEvent) -> u32 {
        match event {
            EthEvent::Mine { miner, .. } => miner.0,
            EthEvent::TxArrive { to, .. }
            | EthEvent::BlockArrive { to, .. }
            | EthEvent::BlockRequest { to, .. }
            | EthEvent::HeadRequest { to, .. }
            | EthEvent::SnapshotRequest { to, .. }
            | EthEvent::SnapshotChunk { to, .. } => to.0,
        }
    }

    fn handle(
        ctx: &EthCtx,
        lane: u32,
        node: &mut EthNode,
        now: SimTime,
        event: EthEvent,
        fx: &mut Effects<EthEvent>,
    ) {
        let id = NodeId(lane);
        match event {
            EthEvent::Mine { generation, .. } => on_mine(ctx, node, id, now, generation, fx),
            EthEvent::TxArrive { tx, gossiped, .. } => on_tx(ctx, node, id, now, tx, gossiped, fx),
            EthEvent::BlockArrive { block, from, .. } => on_block(ctx, node, id, now, block, from, fx),
            EthEvent::BlockRequest { wanted, from, .. } => {
                on_block_request(node, id, wanted, from, fx)
            }
            EthEvent::HeadRequest { from, .. } => on_head_request(node, id, from, fx),
            EthEvent::SnapshotRequest { from, after, .. } => {
                on_snapshot_request(ctx, node, id, from, after, fx)
            }
            EthEvent::SnapshotChunk { from, entries, done, .. } => {
                on_snapshot_chunk(ctx, node, id, now, from, entries, done, fx)
            }
        }
    }
}

/// LSM layout shared by construction and restart: the same config must be
/// used to reopen a node's store, or replay thresholds would differ.
fn eth_store_config() -> LsmConfig {
    LsmConfig {
        // Chain workloads write heavily and never delete: flush less often
        // and let more tables accumulate before the (full) compaction
        // rewrites the store.
        memtable_flush_bytes: 4 << 20,
        max_tables: 48,
        ..LsmConfig::default()
    }
}

/// Store prefix of every node's private LSM (see `LsmStore::new_private`).
const STORE_PREFIX: &str = "lsm";

/// Key of a block's durable record: `!b/` ++ block id. The `!` prefix keeps
/// the namespace disjoint from trie-node keys (32-byte hashes) and account
/// keys (20-byte addresses).
fn block_meta_key(id: &Hash256) -> Vec<u8> {
    let mut k = b"!b/".to_vec();
    k.extend_from_slice(&id.0);
    k
}

/// Durable block record: 32-byte post-state root, then the encoded block.
/// The root is recorded separately from `header.state_root` because setup
/// writes (genesis funding, contract deploys) re-commit a block's state
/// without re-hashing its header.
fn block_meta_record(root: &Hash256, block: &Block) -> Vec<u8> {
    let mut v = root.0.to_vec();
    v.extend_from_slice(&block.encode());
    v
}

fn decode_block_meta(value: &[u8]) -> Option<(Hash256, Block)> {
    if value.len() < 32 {
        return None;
    }
    let root = Hash256(value[..32].try_into().expect("32 bytes"));
    let block = Block::decode(&value[32..]).ok()?;
    Some((root, block))
}

fn reschedule_mine(
    ctx: &EthCtx,
    node: &mut EthNode,
    miner: NodeId,
    now: SimTime,
    fx: &mut Effects<EthEvent>,
) {
    if node.crashed {
        return;
    }
    node.mine_generation += 1;
    let generation = node.mine_generation;
    let mean = ctx.config.pow.miner_interval(ctx.config.nodes);
    let delay = node.rng.exp_duration(mean);
    fx.schedule(now + delay, EthEvent::Mine { miner, generation });
}

fn on_mine(
    ctx: &EthCtx,
    node: &mut EthNode,
    miner: NodeId,
    now: SimTime,
    generation: u64,
    fx: &mut Effects<EthEvent>,
) {
    // PoW saturates the reserved cores whether or not a block is found.
    let interval = ctx.config.pow.miner_interval(ctx.config.nodes);
    if node.crashed || node.mine_generation != generation {
        return;
    }
    let from = SimTime(now.as_micros().saturating_sub(interval.as_micros().min(now.as_micros())));
    node.cpu.saturate(from, now);
    let block = build_block(ctx, node, now, miner);
    fx.count(BLOCKS_MINED, 1);
    let block = Arc::new(block);
    // Adopt locally.
    adopt_block(ctx, node, now, miner, Arc::clone(&block), None, fx);
    // Broadcast to every peer.
    for peer in (0..ctx.config.nodes).map(NodeId) {
        if peer == miner {
            continue;
        }
        let b = Arc::clone(&block);
        fx.send(peer.0, block.byte_size(), move |_at| EthEvent::BlockArrive {
            to: peer,
            block: b,
            from: miner,
        });
    }
    reschedule_mine(ctx, node, miner, now, fx);
    if miner.index() == 0 {
        refresh_confirmed(ctx, node, now);
    }
}

/// Assemble and execute a block on the miner's current head.
fn build_block(ctx: &EthCtx, node: &mut EthNode, now: SimTime, miner: NodeId) -> Block {
    let difficulty = 1000; // uniform difficulty: heaviest == longest
    let parent = node.tree.head();
    let parent_root = node.roots[&parent];
    let height = node.tree.height_of(&parent).expect("head known") + 1;
    node.state.set_root(parent_root);

    let mut included: Vec<Arc<Transaction>> = Vec::new();
    let mut receipts: Vec<(TxId, bool)> = Vec::new();
    let mut gas_total = 0u64;
    let mut exec_time = SimDuration::ZERO;
    // Future-nonce transactions buffered per sender, nonce-ordered —
    // the pool is in arrival order, and gossip can deliver one sender's
    // transactions out of nonce order. A plain FIFO pass would shunt
    // every later transaction of that sender to the next block (each
    // exactly one nonce ahead by the time it's popped), capping blocks
    // at a handful of transactions; real pools queue per sender by
    // nonce. Sender map is ordered so the put-back below is
    // deterministic.
    let mut future: std::collections::BTreeMap<Address, std::collections::BTreeMap<u64, Arc<Transaction>>> =
        Default::default();
    'fill: while included.len() < ctx.config.max_txs_per_block {
        let Some(tx) = node.pool.pop_front() else {
            break;
        };
        if !node.pool_ids.contains(&tx.id()) {
            continue; // pruned
        }
        // Try this transaction, then any buffered successors it unblocks.
        let mut next = Some(tx);
        while let Some(tx) = next.take() {
            match node.state.apply_transaction(&tx, height, &ctx.vm, ctx.config.tx_gas_limit) {
                Ok(res) => {
                    gas_total += res.gas_used.max(1000);
                    exec_time += ctx.config.costs.exec_time(res.gas_used.max(1000))
                        + ctx.config.costs.sig_verify;
                    node.pool_ids.remove(&tx.id());
                    node.pool_admitted.remove(&tx.id());
                    receipts.push((tx.id(), res.success));
                    let nonce = tx.nonce;
                    let from = tx.from;
                    included.push(Arc::clone(&tx));
                    if included.len() >= ctx.config.max_txs_per_block
                        || gas_total >= ctx.config.block_gas_limit
                    {
                        break 'fill;
                    }
                    if let Some(q) = future.get_mut(&from) {
                        next = q.remove(&(nonce + 1));
                        if q.is_empty() {
                            future.remove(&from);
                        }
                    }
                }
                Err(TxInvalid::BadNonce { expected, got }) if got > expected => {
                    // Future nonce: hold until its predecessor applies.
                    future.entry(tx.from).or_default().insert(got, tx);
                }
                Err(_) => {
                    // Stale or broken: drop.
                    node.pool_ids.remove(&tx.id());
                    node.pool_admitted.remove(&tx.id());
                }
            }
        }
    }
    // Still-blocked transactions wait in the pool for a later block —
    // unless their nonce gap has persisted past the eviction horizon, in
    // which case the predecessor is presumed lost (or never existed: a
    // nonce-gap flood) and the entry ages out instead of re-queueing
    // forever.
    for (_, q) in future {
        for (_, tx) in q {
            let admitted = *node.pool_admitted.entry(tx.id()).or_insert(height);
            if height.saturating_sub(admitted) > ctx.config.pool_evict_blocks {
                node.pool_ids.remove(&tx.id());
                node.pool_admitted.remove(&tx.id());
            } else {
                node.pool.push_front(tx);
            }
        }
    }
    node.cpu.charge(now, exec_time);

    let header = BlockHeader {
        parent,
        height,
        timestamp_us: now.as_micros(),
        tx_root: merkle_root(&included.iter().map(|t| t.id().0).collect::<Vec<_>>()),
        state_root: node.state.root(),
        proposer: miner,
        difficulty,
        round: 0,
    };
    let block = Block { header, txs: included };
    let id = block.id();
    let record = block_meta_record(&node.state.root(), &block);
    node.state
        .commit_block_with_meta(vec![(block_meta_key(&id), Some(record))])
        .expect("state store healthy");
    node.roots.insert(id, node.state.root());
    node.receipts.insert(id, receipts);
    block
}

/// Execute a sealed block's transactions through the optimistic parallel
/// executor (`node.state` must already sit at the parent root). The
/// simulation still charges the serial execution time — the executor's
/// parallelism shows up in the modeled-speedup counters, not in simulated
/// latency — so every pre-executor figure is unchanged.
fn execute_block_txs(
    ctx: &EthCtx,
    node: &mut EthNode,
    now: SimTime,
    block: &Block,
) -> Vec<(TxId, bool)> {
    let outcome = node.state.execute_block(
        &block.txs,
        block.header.height,
        &ctx.vm,
        ctx.config.tx_gas_limit,
        |gas| ctx.config.costs.exec_time(gas.max(1000)).as_micros(),
    );
    for tx in &block.txs {
        node.seen.insert(tx.id());
    }
    node.cpu.charge(now, SimDuration::from_micros(outcome.serial_us));
    node.exec_conflicts += outcome.conflicts;
    node.exec_serial_us += outcome.serial_us;
    node.exec_modeled_us += outcome.modeled_us;
    outcome.receipts
}

/// Validate (re-execute) and adopt a block into a node's tree.
fn adopt_block(
    ctx: &EthCtx,
    node: &mut EthNode,
    now: SimTime,
    me: NodeId,
    block: Arc<Block>,
    request_from: Option<NodeId>,
    fx: &mut Effects<EthEvent>,
) {
    let id = block.id();
    if node.bodies.contains_key(&id) {
        return;
    }
    let parent = block.header.parent;
    if let Some(&parent_root) = node.roots.get(&parent) {
        // Full validation: re-execute on the parent state.
        if !node.roots.contains_key(&id) {
            node.state.set_root(parent_root);
            let receipts = execute_block_txs(ctx, node, now, &block);
            let record = block_meta_record(&node.state.root(), &block);
            node.state
                .commit_block_with_meta(vec![(block_meta_key(&id), Some(record))])
                .expect("state store healthy");
            node.roots.insert(id, node.state.root());
            node.receipts.insert(id, receipts);
        }
        node.bodies.insert(id, Arc::clone(&block));
        let old_head = node.tree.head();
        let outcome = node.tree.insert(id, parent, block.header.difficulty);
        if let InsertOutcome::NewHead { reorged } = outcome {
            if reorged {
                readopt_abandoned(node, old_head);
            }
        }
    } else {
        // Orphan: stash in the tree and fetch the ancestor chain.
        node.tree.insert(id, parent, block.header.difficulty);
        node.bodies.insert(id, Arc::clone(&block));
        if let Some(from) = request_from {
            fx.send(from.0, 64, move |_at| EthEvent::BlockRequest {
                to: from,
                wanted: parent,
                from: me,
            });
        }
        return;
    }
    // Connecting this block may have connected stored orphan children;
    // execute any now-connected bodies we have roots missing for.
    execute_connected_descendants(ctx, node, now, id);
    // Whatever the head is now, drop its branch's transactions from the
    // pool (after the reorg path above re-added the abandoned branch's).
    prune_main_chain(node);
}

/// Remove the transactions of blocks that joined this node's main chain
/// from its pool. Walks head→genesis, stopping at the first block
/// already pruned, so each block is processed once; side blocks are
/// deliberately never pruned here.
fn prune_main_chain(node: &mut EthNode) {
    let mut cursor = node.tree.head();
    while node.pruned.insert(cursor) {
        let Some(body) = node.bodies.get(&cursor) else {
            break;
        };
        for tx in &body.txs {
            node.pool_ids.remove(&tx.id());
            node.pool_admitted.remove(&tx.id());
        }
        cursor = body.header.parent;
    }
}

/// After a block connects, orphan children stored in `bodies` may now be
/// on the tree without executed state; execute them in height order.
fn execute_connected_descendants(ctx: &EthCtx, node: &mut EthNode, now: SimTime, from_id: Hash256) {
    let mut frontier = vec![from_id];
    while let Some(parent_id) = frontier.pop() {
        let Some(&parent_root) = node.roots.get(&parent_id) else {
            continue;
        };
        let children: Vec<Arc<Block>> = node
            .bodies
            .values()
            .filter(|b| b.header.parent == parent_id && !node.roots.contains_key(&b.id()))
            .cloned()
            .collect();
        for child in children {
            node.state.set_root(parent_root);
            let receipts = execute_block_txs(ctx, node, now, &child);
            let cid = child.id();
            let record = block_meta_record(&node.state.root(), &child);
            node.state
                .commit_block_with_meta(vec![(block_meta_key(&cid), Some(record))])
                .expect("state store healthy");
            node.roots.insert(cid, node.state.root());
            node.receipts.insert(cid, receipts);
            frontier.push(cid);
        }
    }
}

/// A reorg abandoned part of the old chain: re-adopt its transactions.
fn readopt_abandoned(node: &mut EthNode, old_head: Hash256) {
    let mut cursor = old_head;
    // Walk the old branch until we hit a block still on the main chain.
    while !node.tree.on_main_chain(&cursor) {
        let Some(body) = node.bodies.get(&cursor) else {
            break;
        };
        let parent = body.header.parent;
        // Block bodies already hold `Arc<Transaction>`: re-adopting the
        // abandoned branch bumps refcounts instead of deep-cloning bodies.
        let txs = body.txs.clone();
        let height = node.tree.head_height();
        for tx in txs {
            if node.pool_ids.insert(tx.id()) {
                node.pool_admitted.insert(tx.id(), height);
                node.pool.push_back(tx);
            }
        }
        cursor = parent;
    }
}

fn on_tx(
    ctx: &EthCtx,
    node: &mut EthNode,
    me: NodeId,
    now: SimTime,
    tx: Arc<Transaction>,
    gossiped: bool,
    fx: &mut Effects<EthEvent>,
) {
    if node.crashed {
        return;
    }
    node.cpu.charge(now, ctx.config.costs.sig_verify);
    if !node.enqueue(Arc::clone(&tx)) {
        return;
    }
    if !gossiped {
        let size = tx.byte_size();
        for peer in (0..ctx.config.nodes).map(NodeId) {
            if peer == me || !node.rng.chance(ctx.config.tx_gossip_prob) {
                continue;
            }
            let tx = Arc::clone(&tx);
            fx.send(peer.0, size, move |_at| EthEvent::TxArrive { to: peer, tx, gossiped: true });
        }
    }
}

fn on_block(
    ctx: &EthCtx,
    node: &mut EthNode,
    me: NodeId,
    now: SimTime,
    block: Arc<Block>,
    from: NodeId,
    fx: &mut Effects<EthEvent>,
) {
    if node.crashed {
        return;
    }
    if node.restarted_at.is_some() {
        if node.snapshot_syncing {
            // The in-memory chain is about to be rebuilt from the snapshot;
            // adopting blocks against the stale pre-crash state would only
            // be thrown away.
            return;
        }
        if node.sync_target.is_none() {
            // First arrival after a restart is the head-request reply: its
            // height is the gap this node must close.
            node.sync_target = Some(block.header.height.max(node.tree.head_height()));
            let gap = block.header.height.saturating_sub(node.tree.head_height());
            if gap > ctx.config.snapshot_sync_blocks {
                // Gap too deep to replay block by block: fetch the peer's
                // state snapshot in bounded chunks instead. Mining stops
                // until the transfer lands.
                node.snapshot_syncing = true;
                node.mine_generation += 1;
                fx.send(from.0, 64, move |_at| EthEvent::SnapshotRequest {
                    to: from,
                    from: me,
                    after: None,
                });
                return;
            }
        }
        node.resync_blocks += 1;
        node.resync_bytes += block.byte_size();
    }
    let had_head = node.tree.head();
    adopt_block(ctx, node, now, me, block, Some(from), fx);
    if node.tree.head() != had_head {
        // Head moved: restart the mining race on the new head.
        reschedule_mine(ctx, node, me, now, fx);
    }
    if let (Some(t0), Some(target)) = (node.restarted_at, node.sync_target) {
        if node.tree.head_height() >= target {
            // A completed recovery records at least 1 ms: `recovery_ms == 0`
            // means "never caught up", and a sub-millisecond catch-up (no
            // blocks mined during the outage) must not read as that.
            node.recovery_ms = node.recovery_ms.max((now.since(t0).as_micros() / 1000).max(1));
            node.restarted_at = None;
            node.sync_target = None;
        }
    }
    if me.index() == 0 {
        refresh_confirmed(ctx, node, now);
    }
}

fn on_block_request(
    node: &mut EthNode,
    me: NodeId,
    wanted: Hash256,
    from: NodeId,
    fx: &mut Effects<EthEvent>,
) {
    if node.crashed {
        return;
    }
    if let Some(body) = node.bodies.get(&wanted) {
        let body = Arc::clone(body);
        let bytes = body.byte_size();
        fx.send(from.0, bytes, move |_at| EthEvent::BlockArrive { to: from, block: body, from: me });
    }
}

/// Serve a recovering peer our current head body; the orphan-fetch walk
/// then pulls the ancestor chain block by block.
fn on_head_request(node: &mut EthNode, me: NodeId, from: NodeId, fx: &mut Effects<EthEvent>) {
    if node.crashed {
        return;
    }
    let head = node.tree.head();
    if let Some(body) = node.bodies.get(&head) {
        let body = Arc::clone(body);
        let bytes = body.byte_size();
        fx.send(from.0, bytes, move |_at| EthEvent::BlockArrive { to: from, block: body, from: me });
    }
}

/// Serve one bounded snapshot chunk from this node's durable store. Each
/// request pins a fresh snapshot (flushing the memtable), reads one chunk
/// past the cursor via the sparse indexes, and unpins — the store is free
/// to compact between chunks, and content-addressed trie nodes make the
/// resulting cross-chunk mix safe on the receiver.
fn on_snapshot_request(
    ctx: &EthCtx,
    node: &mut EthNode,
    me: NodeId,
    from: NodeId,
    after: Option<Vec<u8>>,
    fx: &mut Effects<EthEvent>,
) {
    if node.crashed {
        return;
    }
    let store = node.state.store_mut();
    let snap = store.snapshot_open();
    let (entries, done) = store
        .snapshot_chunk(snap, after.as_deref(), ctx.config.snapshot_chunk_bytes)
        .expect("own snapshot readable");
    store.snapshot_close(snap);
    let bytes: u64 = 16 + entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
    let entries = Arc::new(entries);
    fx.send(from.0, bytes, move |_at| EthEvent::SnapshotChunk {
        to: from,
        from: me,
        entries,
        done,
    });
}

/// Apply one received snapshot chunk. Chunks are raw store pairs (trie
/// nodes, account values, `!b/` block records), applied blind in one batch;
/// when the last chunk lands the node rebuilds its in-memory chain from the
/// store and closes the trailing gap through the normal replay path.
#[allow(clippy::too_many_arguments)]
fn on_snapshot_chunk(
    ctx: &EthCtx,
    node: &mut EthNode,
    me: NodeId,
    now: SimTime,
    from: NodeId,
    entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
    done: bool,
    fx: &mut Effects<EthEvent>,
) {
    if node.crashed || !node.snapshot_syncing {
        return;
    }
    node.snapshot_chunks += 1;
    node.snapshot_bytes += entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
    let mut batch = bb_storage::WriteBatch::new();
    for (k, v) in entries.iter() {
        batch.put(k, v);
    }
    let cursor = entries.last().map(|(k, _)| k.clone());
    node.state.store_mut().apply_batch(batch).expect("state store healthy");
    if !done {
        fx.send(from.0, 64, move |_at| EthEvent::SnapshotRequest {
            to: from,
            from: me,
            after: cursor,
        });
        return;
    }
    // Transfer complete: make it durable, rebuild the chain from the store,
    // and fetch whatever was mined mid-transfer through the replay path.
    node.state.store_mut().flush();
    rebuild_node_from_store(node);
    node.snapshot_syncing = false;
    fx.send(from.0, 64, move |_at| EthEvent::HeadRequest { to: from, from: me });
    reschedule_mine(ctx, node, me, now, fx);
}

/// Rebuild a node's in-memory chain (tree, bodies, roots, head state) from
/// its durable store alone — the shared tail of crash restart and snapshot
/// sync. The pool and per-block receipts are volatile and reset.
fn rebuild_node_from_store(n: &mut EthNode) {
    // Everything in-memory is stale; only the Vfs behind the store is
    // authoritative.
    let vfs = n.state.store().vfs();
    let store =
        LsmStore::open(vfs, STORE_PREFIX, eth_store_config()).expect("durable store reopens");
    let replay = store.stats();
    n.wal_replayed += replay.wal_records_replayed;
    n.wal_truncated += replay.wal_tail_truncated;
    let mut state = AccountState::new(store);

    // Recover every durably recorded block, oldest first. The set is
    // ancestor-closed: a block is only recorded once executed, and
    // execution requires its parent's committed state.
    let mut recovered: Vec<(Hash256, Block)> = state
        .store_mut()
        .scan_prefix(b"!b/")
        .expect("durable store reads")
        .iter()
        .filter_map(|(_, v)| decode_block_meta(v))
        .collect();
    recovered.sort_by_key(|(_, b)| (b.header.height, b.id()));
    let genesis = recovered
        .iter()
        .find(|(_, b)| b.header.height == 0)
        .expect("genesis record is durable")
        .1
        .id();

    let mut tree = BlockTree::new(genesis);
    let mut bodies = HashMap::new();
    let mut roots = HashMap::new();
    let mut receipts = HashMap::new();
    let mut seen = HashSet::new();
    for (root, block) in recovered {
        let bid = block.id();
        if block.header.height > 0 {
            tree.insert(bid, block.header.parent, block.header.difficulty.max(1));
        }
        for tx in &block.txs {
            seen.insert(tx.id());
        }
        roots.insert(bid, root);
        // Receipts are volatile; recovered blocks keep empty ones.
        // (The observer's confirmed log is kept separately.)
        receipts.insert(bid, Vec::new());
        bodies.insert(bid, Arc::new(block));
    }
    let head = tree.head();
    state.set_root(roots[&head]);

    n.state = state;
    n.tree = tree;
    n.bodies = bodies;
    n.roots = roots;
    n.receipts = receipts;
    n.seen = seen;
    n.pool = VecDeque::new();
    n.pool_ids = HashSet::new();
    n.pool_admitted = HashMap::new();
    n.pruned = HashSet::new();
    prune_main_chain(n);
}

/// Advance the observer's (node 0) confirmation log. Only lane-0 events can
/// change node 0's tree, so this runs only on lane 0.
fn refresh_confirmed(ctx: &EthCtx, node: &mut EthNode, now: SimTime) {
    let depth = ctx.config.pow.confirm_depth;
    let upto = node.tree.confirmed_height(depth);
    while node.confirmed_height < upto {
        let h = node.confirmed_height + 1;
        let Some(id) = node.tree.main_chain_at(h) else {
            break;
        };
        // Only blocks whose bodies and receipts node 0 holds.
        let (Some(_body), Some(receipts)) = (node.bodies.get(&id), node.receipts.get(&id)) else {
            break;
        };
        node.confirmed.push(BlockSummary {
            id,
            height: h,
            proposer: node.bodies[&id].header.proposer,
            confirmed_at_us: now.as_micros(),
            txs: receipts.clone(),
        });
        node.confirmed_height = h;
    }
}

impl EthereumChain {
    /// Build a network per `config`: funded client accounts, genesis block,
    /// mining not yet started (starts on the first `advance_to`/`submit`).
    pub fn new(config: EthConfig) -> EthereumChain {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let genesis_header = BlockHeader {
            parent: Hash256::ZERO,
            height: 0,
            timestamp_us: 0,
            tx_root: Hash256::ZERO,
            state_root: Hash256::ZERO,
            proposer: NodeId(0),
            difficulty: 0,
            round: 0,
        };
        let genesis_block = Arc::new(Block { header: genesis_header, txs: Vec::new() });
        let genesis = genesis_block.id();
        // (genesis id flows into every node's BlockTree below)
        let vm = Vm::new(
            VmConfig {
                max_memory: ((config.node_mem_bytes.saturating_sub(config.costs.mem_base)) as f64
                    / config.costs.mem_overhead) as usize,
                ..VmConfig::default()
            },
            Default::default(),
        );
        // The network's stream forks off the root seed first (its draws sit
        // on the serial/sharded boundary); each node then forks its own
        // private stream for mining races and gossip flips.
        let network = Network::new(config.nodes, config.link.clone(), rng.fork());
        let nodes = (0..config.nodes)
            .map(|_i| {
                let mut state = AccountState::new(LsmStore::new_private(eth_store_config()));
                // Fund the benchmark client accounts at genesis.
                for seed in 0..1024 {
                    let kp = bb_crypto::KeyPair::from_seed(seed);
                    state
                        .credit(&Address::from_public_key(&kp.public()), i64::MAX / 4)
                        .expect("fresh store");
                }
                // Seal the genesis state so its root is durable, recording
                // the genesis block alongside it for restart recovery.
                let record = block_meta_record(&state.root(), &genesis_block);
                state
                    .commit_block_with_meta(vec![(block_meta_key(&genesis), Some(record))])
                    .expect("fresh store");
                let mut node = EthNode {
                    state,
                    tree: BlockTree::new(genesis),
                    bodies: HashMap::new(),
                    roots: HashMap::new(),
                    receipts: HashMap::new(),
                    pool: VecDeque::new(),
                    pool_ids: HashSet::new(),
                    pool_admitted: HashMap::new(),
                    seen: HashSet::new(),
                    pruned: HashSet::from([genesis]),
                    cpu: CpuMeter::new(config.cores),
                    rng: rng.fork(),
                    mine_generation: 0,
                    crashed: false,
                    restarted_at: None,
                    sync_target: None,
                    snapshot_syncing: false,
                    snapshot_chunks: 0,
                    snapshot_bytes: 0,
                    recovery_ms: 0,
                    resync_blocks: 0,
                    resync_bytes: 0,
                    exec_conflicts: 0,
                    exec_serial_us: 0,
                    exec_modeled_us: 0,
                    wal_replayed: 0,
                    wal_truncated: 0,
                    confirmed: Vec::new(),
                    confirmed_height: 0,
                };
                node.bodies.insert(genesis, Arc::clone(&genesis_block));
                node.roots.insert(genesis, node.state.root());
                node.receipts.insert(genesis, Vec::new());
                node
            })
            .collect();
        let ctx = EthCtx { config: config.clone(), vm };
        let engine = ShardedEngine::new(ctx, nodes, network.min_latency());
        EthereumChain { config, engine, network, started: false, mem_peak: 0 }
    }

    /// Restart a crashed node from its durable store alone: reopen the LSM
    /// (WAL replay, torn-tail truncation), rebuild the chain from persisted
    /// block records, then ask a live peer for its head to download the gap.
    fn restart_node(&mut self, id: NodeId) {
        let now = self.engine.now();
        let peer = (0..self.config.nodes)
            .map(NodeId)
            .find(|p| *p != id && !self.network.is_crashed(*p));
        self.engine.with_node_mut(id.0, |n| {
            rebuild_node_from_store(n);
            n.crashed = false;
            n.mine_generation += 1;
            // Catch-up bookkeeping: recovery completes when the head reaches
            // the first live peer's announced height. With no live peer the
            // node is trivially caught up.
            n.restarted_at = peer.map(|_| now);
            n.sync_target = None;
            n.snapshot_syncing = false;
        });
        self.network.recover(id);
        if let Some(peer) = peer {
            self.engine.schedule(now, EthEvent::HeadRequest { to: peer, from: id });
        }
        // Rejoin the mining race.
        let mean = self.config.pow.miner_interval(self.config.nodes);
        let (generation, delay) = self.engine.with_node_mut(id.0, |n| {
            n.mine_generation += 1;
            (n.mine_generation, n.rng.exp_duration(mean))
        });
        self.engine.schedule(now + delay, EthEvent::Mine { miner: id, generation });
    }

    fn start_mining(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let now = self.engine.now();
        let mean = self.config.pow.miner_interval(self.config.nodes);
        for i in 0..self.config.nodes {
            let (generation, delay) = self.engine.with_node_mut(i, |node| {
                node.mine_generation += 1;
                (node.mine_generation, node.rng.exp_duration(mean))
            });
            self.engine.schedule(now + delay, EthEvent::Mine { miner: NodeId(i), generation });
        }
    }
}

impl BlockchainConnector for EthereumChain {
    fn name(&self) -> &'static str {
        "ethereum"
    }

    fn node_count(&self) -> u32 {
        self.config.nodes
    }

    fn deploy(&mut self, bundle: &ContractBundle) -> Address {
        assert!(!self.started, "deploy contracts before the run starts");
        let addr = Address::contract(&Address::ZERO, self.engine.with_node(0, |n| n.seen.len()) as u64);
        for i in 0..self.config.nodes {
            self.engine.with_node_mut(i, |node| {
                let head = node.tree.head();
                let root = node.roots[&head];
                node.state.set_root(root);
                node.state.install_contract(&addr, &bundle.svm).expect("setup store healthy");
                // Re-record the head block with its post-deploy root so a
                // restart recovers the contract.
                let body = node.bodies.get(&head).expect("head body known").clone();
                let record = block_meta_record(&node.state.root(), &body);
                node.state
                    .commit_block_with_meta(vec![(block_meta_key(&head), Some(record))])
                    .expect("setup store healthy");
                node.roots.insert(head, node.state.root());
            });
        }
        addr
    }

    fn submit(&mut self, server: NodeId, tx: Transaction) -> bool {
        self.start_mining();
        if self.network.is_crashed(server) {
            // A crashed node's RPC endpoint refuses connections; the client
            // sees the failure and does not burn a nonce on it.
            return false;
        }
        let now = self.engine.now();
        let at = now + self.config.rpc_delay;
        self.engine
            .schedule(at, EthEvent::TxArrive { to: server, tx: Arc::new(tx), gossiped: false });
        true
    }

    fn advance_to(&mut self, t: SimTime) {
        self.start_mining();
        self.engine.run_until(t, &mut self.network);
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn confirmed_blocks_since(&mut self, height: u64) -> Vec<BlockSummary> {
        self.engine.with_node(0, |node| {
            node.confirmed.iter().filter(|b| b.height > height).cloned().collect()
        })
    }

    fn query(&mut self, q: &Query) -> Result<QueryResult, QueryError> {
        self.engine.with_ctx_node_mut(0, |ctx, node| match q {
            Query::BlockTxs { height } => {
                let id = node.tree.main_chain_at(*height).ok_or(QueryError::NotFound)?;
                let body = node.bodies.get(&id).ok_or(QueryError::NotFound)?;
                let mut enc = Encoder::with_capacity(body.txs.len() * 48 + 4);
                enc.put_u32(body.txs.len() as u32);
                for tx in &body.txs {
                    enc.put_raw(tx.from.as_bytes()).put_raw(tx.to.as_bytes()).put_u64(tx.value);
                }
                let cost = SimDuration::from_micros(20 + 4 * body.txs.len() as u64);
                Ok(QueryResult { data: enc.finish(), server_cost: cost })
            }
            Query::AccountAtBlock { account, height } => {
                let id = node.tree.main_chain_at(*height).ok_or(QueryError::NotFound)?;
                let root = *node.roots.get(&id).ok_or(QueryError::NotFound)?;
                let acct = node
                    .state
                    .account_at(root, account)
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                Ok(QueryResult {
                    data: acct.balance.to_le_bytes().to_vec(),
                    server_cost: SimDuration::from_micros(60),
                })
            }
            Query::Contract { address, payload } => {
                // Read-only execution on the current confirmed state.
                let head = node.tree.head();
                let root = node.roots[&head];
                node.state.set_root(root);
                let kp = bb_crypto::KeyPair::from_seed(0);
                let acct = node
                    .state
                    .account(&Address::from_public_key(&kp.public()))
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                let tx = Transaction::signed(&kp, acct.nonce, *address, 0, payload.clone());
                let height = node.tree.head_height();
                let res = node
                    .state
                    .apply_transaction(&tx, height, &ctx.vm, ctx.config.tx_gas_limit)
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                // Roll the state change back: queries are not transactions.
                node.state.set_root(root);
                if !res.success {
                    return Err(QueryError::Contract(
                        res.error.unwrap_or_else(|| "reverted".into()),
                    ));
                }
                Ok(QueryResult {
                    data: res.output,
                    server_cost: ctx.config.costs.exec_time(res.gas_used),
                })
            }
        })
    }

    fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                self.network.crash(node);
                self.engine.with_node_mut(node.0, |n| {
                    n.crashed = true;
                    n.mine_generation += 1; // cancel races
                    // Amnesia: the pool and the trie's uncommitted overlay
                    // and caches die with the process. The durable store
                    // (and the in-memory chain copies a legacy Recover
                    // resurrects) stay.
                    n.pool.clear();
                    n.pool_ids.clear();
                    n.pool_admitted.clear();
                    n.snapshot_syncing = false;
                    n.state.drop_volatile();
                });
            }
            Fault::Recover(node) => {
                self.network.recover(node);
                self.engine.with_node_mut(node.0, |n| n.crashed = false);
                self.started = false;
                self.start_mining();
            }
            Fault::Restart(node) => self.restart_node(node),
            Fault::TornTail(node) => {
                let vfs = self.engine.with_node(node.0, |n| n.state.store().vfs());
                let mut injector =
                    FaultVfs::new(vfs, self.config.seed ^ 0xF417_7A11 ^ node.0 as u64);
                injector.tear_tail(&format!("{STORE_PREFIX}/wal"));
            }
            Fault::BitRot(node, flips) => {
                let vfs = self.engine.with_node(node.0, |n| n.state.store().vfs());
                let mut injector =
                    FaultVfs::new(vfs, self.config.seed ^ 0xB17_0707 ^ node.0 as u64);
                injector.bit_rot(&format!("{STORE_PREFIX}/wal"), flips);
            }
            Fault::Delay(node, d) => self.network.set_extra_delay(node, d),
            Fault::Corrupt(node, p) => self.network.set_corrupt_prob(node, p),
            Fault::PartitionHalf { left } => self.network.partition_in_half(left),
            Fault::Heal => self.network.heal(),
        }
    }

    fn stats(&self) -> PlatformStats {
        let n = self.config.nodes as usize;
        let mut disk = 0u64;
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        let (mut flushed, mut dropped, mut batches) = (0u64, 0u64, 0u64);
        let (mut wal_replayed, mut wal_truncated) = (0u64, 0u64);
        let mut recovery_ms = 0u64;
        let (mut resync_blocks, mut resync_bytes) = (0u64, 0u64);
        let (mut exec_conflicts, mut exec_serial_us, mut exec_modeled_us) = (0u64, 0u64, 0u64);
        let (mut stall_ms, mut debt, mut compacted) = (0u64, 0u64, 0u64);
        let (mut store_written, mut store_logical) = (0u64, 0u64);
        let (mut snap_chunks, mut snap_bytes) = (0u64, 0u64);
        // Average per-second CPU and network series over nodes.
        let mut cpu: Vec<f64> = Vec::new();
        let mut net: Vec<f64> = Vec::new();
        for i in 0..self.config.nodes {
            self.engine.with_node(i, |node| {
                let store_stats = node.state.store().stats();
                disk += store_stats.disk_bytes;
                batches += store_stats.batch_writes;
                stall_ms += store_stats.write_stall_ms;
                debt += store_stats.compaction_debt_bytes;
                compacted += store_stats.bytes_compacted;
                store_written += store_stats.bytes_written;
                store_logical += store_stats.logical_bytes;
                snap_chunks += node.snapshot_chunks;
                snap_bytes += node.snapshot_bytes;
                let (h, m) = node.state.trie_cache_stats();
                cache_hits += h;
                cache_misses += m;
                let (f, d) = node.state.trie_flush_stats();
                flushed += f;
                dropped += d;
                wal_replayed += node.wal_replayed;
                wal_truncated += node.wal_truncated;
                recovery_ms = recovery_ms.max(node.recovery_ms);
                resync_blocks += node.resync_blocks;
                resync_bytes += node.resync_bytes;
                exec_conflicts += node.exec_conflicts;
                exec_serial_us += node.exec_serial_us;
                exec_modeled_us += node.exec_modeled_us;
                let series = node.cpu.utilisation_series();
                if series.len() > cpu.len() {
                    cpu.resize(series.len(), 0.0);
                }
                for (j, v) in series.iter().enumerate() {
                    cpu[j] += v / n as f64;
                }
            });
            let tx = self.network.tx_mbps_series(NodeId(i));
            if tx.len() > net.len() {
                net.resize(tx.len(), 0.0);
            }
            for (j, v) in tx.iter().enumerate() {
                net[j] += v / n as f64;
            }
        }
        let (blocks_main, txs_committed) = self.engine.with_node(0, |node| {
            (node.tree.main_chain_len(), node.confirmed.iter().map(|b| b.txs.len() as u64).sum())
        });
        PlatformStats {
            blocks_total: self.engine.counter(BLOCKS_MINED),
            blocks_main,
            txs_committed,
            disk_bytes: disk,
            mem_peak_bytes: self.mem_peak.max(self.config.costs.mem_base),
            cpu_utilisation: cpu,
            net_mbps: net,
            net_bytes: self.network.stats().bytes,
            trie_cache_hits: cache_hits,
            trie_cache_misses: cache_misses,
            state_nodes_flushed: flushed,
            state_nodes_dropped: dropped,
            batch_put_count: batches,
            wal_records_replayed: wal_replayed,
            wal_tail_truncated: wal_truncated,
            recovery_ms,
            resync_blocks,
            resync_bytes,
            write_stall_ms: stall_ms,
            compaction_debt_bytes: debt,
            bytes_compacted: compacted,
            storage_bytes_written: store_written,
            storage_logical_bytes: store_logical,
            snapshot_chunks: snap_chunks,
            snapshot_bytes: snap_bytes,
            exec_conflicts,
            exec_serial_us,
            exec_modeled_us,
        }
    }

    fn preload_blocks(&mut self, blocks: Vec<Vec<Transaction>>) {
        assert!(!self.started, "preload before the run starts");
        for txs in blocks {
            let txs: Vec<Arc<Transaction>> = txs.into_iter().map(Arc::new).collect();
            let now = self.engine.now();
            for i in 0..self.config.nodes {
                self.engine.with_ctx_node_mut(i, |ctx, node| {
                    let parent = node.tree.head();
                    let parent_root = node.roots[&parent];
                    let height = node.tree.head_height() + 1;
                    node.state.set_root(parent_root);
                    let mut receipts = Vec::with_capacity(txs.len());
                    for tx in &txs {
                        let ok = node
                            .state
                            .apply_transaction(tx, height, &ctx.vm, ctx.config.tx_gas_limit)
                            .map(|r| r.success)
                            .unwrap_or(false);
                        receipts.push((tx.id(), ok));
                    }
                    let header = BlockHeader {
                        parent,
                        height,
                        timestamp_us: now.as_micros(),
                        tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
                        state_root: node.state.root(),
                        proposer: NodeId(0),
                        difficulty: 1000,
                        round: 0,
                    };
                    let block = Arc::new(Block { header, txs: txs.clone() });
                    let id = block.id();
                    let record = block_meta_record(&node.state.root(), &block);
                    node.state
                        .commit_block_with_meta(vec![(block_meta_key(&id), Some(record))])
                        .expect("state store healthy");
                    node.roots.insert(id, node.state.root());
                    node.receipts.insert(id, receipts.clone());
                    node.bodies.insert(id, Arc::clone(&block));
                    node.tree.insert(id, parent, 1000);
                    node.pruned.insert(id);
                    if i == 0 {
                        node.confirmed.push(BlockSummary {
                            id,
                            height,
                            proposer: NodeId(0),
                            confirmed_at_us: now.as_micros(),
                            txs: receipts,
                        });
                        node.confirmed_height = height;
                    }
                });
                if i == 0 {
                    self.engine.bump_counter(BLOCKS_MINED, 1);
                }
            }
        }
    }

    fn execute_direct(&mut self, tx: Transaction) -> DirectExec {
        let (exec, modeled) = self.engine.with_ctx_node_mut(0, |ctx, node| {
            let head = node.tree.head();
            let root = node.roots[&head];
            node.state.set_root(root);
            let height = node.tree.head_height();
            match node.state.apply_transaction(&tx, height, &ctx.vm, u64::MAX / 2) {
                Ok(res) => {
                    let modeled = ctx.config.costs.modeled_mem(res.vm_peak_mem);
                    // Commit the direct execution as the new head state,
                    // updating the head's durable record in the same batch.
                    let body = node.bodies.get(&head).expect("head body known").clone();
                    let record = block_meta_record(&node.state.root(), &body);
                    node.state
                        .commit_block_with_meta(vec![(block_meta_key(&head), Some(record))])
                        .expect("state store healthy");
                    node.roots.insert(head, node.state.root());
                    (
                        DirectExec {
                            success: res.success,
                            duration: ctx.config.costs.sig_verify
                                + ctx.config.costs.exec_time(res.gas_used),
                            gas_used: res.gas_used,
                            modeled_mem: modeled,
                            output: res.output,
                            error: res.error,
                        },
                        modeled,
                    )
                }
                Err(e) => (
                    DirectExec {
                        success: false,
                        duration: ctx.config.costs.sig_verify,
                        gas_used: 0,
                        modeled_mem: 0,
                        output: Vec::new(),
                        error: Some(e.to_string()),
                    },
                    0,
                ),
            }
        });
        self.mem_peak = self.mem_peak.max(modeled);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_contracts::{donothing, ycsb};
    use bb_crypto::KeyPair;

    fn small_chain(nodes: u32) -> EthereumChain {
        let mut config = EthConfig::with_nodes(nodes);
        config.pow.base_interval = SimDuration::from_millis(500); // fast tests
        EthereumChain::new(config)
    }

    fn client_tx(seed: u64, nonce: u64, to: Address, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, 0, payload)
    }

    #[test]
    fn transactions_get_mined_and_confirmed() {
        let mut chain = small_chain(4);
        let contract = chain.deploy(&ycsb::bundle());
        for nonce in 0..20 {
            let tx = client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v"));
            chain.submit(NodeId((nonce % 4) as u32), tx);
        }
        chain.advance_to(SimTime::from_secs(30));
        let blocks = chain.confirmed_blocks_since(0);
        assert!(!blocks.is_empty(), "no confirmed blocks");
        let committed: usize = blocks.iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 20, "all transactions confirmed exactly once");
        assert!(blocks.iter().all(|b| b.txs.iter().all(|&(_, ok)| ok)));
    }

    #[test]
    fn nodes_converge_on_one_chain() {
        let mut chain = small_chain(4);
        let contract = chain.deploy(&donothing::bundle());
        for nonce in 0..10 {
            chain.submit(NodeId(0), client_tx(1, nonce, contract, donothing::call()));
        }
        chain.advance_to(SimTime::from_secs(40));
        // All nodes should agree on the confirmed prefix.
        let h0 = chain.engine.with_node(0, |n| n.tree.confirmed_height(2));
        for i in 1..4 {
            let hi = chain.engine.with_node(i, |n| n.tree.confirmed_height(2));
            let common = h0.min(hi);
            assert!(common > 0, "node {i} has no confirmed chain (h0={h0}, hi={hi})");
            for h in 1..=common {
                assert_eq!(
                    chain.engine.with_node(0, |n| n.tree.main_chain_at(h)),
                    chain.engine.with_node(i, |n| n.tree.main_chain_at(h)),
                    "divergence at height {h} on node {i}"
                );
            }
        }
    }

    #[test]
    fn forks_happen_but_resolve() {
        let mut chain = small_chain(8);
        chain.advance_to(SimTime::from_secs(120));
        let stats = chain.stats();
        assert!(stats.blocks_total >= stats.blocks_main);
        // The main chain grows at roughly the configured rate.
        assert!(stats.blocks_main > 100, "main chain too short: {}", stats.blocks_main);
    }

    #[test]
    fn partition_creates_forks_then_heals() {
        let mut chain = small_chain(8);
        chain.advance_to(SimTime::from_secs(20));
        chain.inject(Fault::PartitionHalf { left: 4 });
        chain.advance_to(SimTime::from_secs(60));
        chain.inject(Fault::Heal);
        chain.advance_to(SimTime::from_secs(120));
        let stats = chain.stats();
        let forked = stats.blocks_total - stats.blocks_main;
        assert!(forked > 5, "partition produced only {forked} fork blocks");
        // After healing, all nodes agree on the head within confirmation depth.
        let heads: Vec<_> =
            (0..8).map(|i| chain.engine.with_node(i, |n| n.tree.head_height())).collect();
        let max = *heads.iter().max().unwrap();
        let min = *heads.iter().min().unwrap();
        assert!(max - min <= 3, "heads diverged after heal: {heads:?}");
    }

    #[test]
    fn crash_does_not_stop_the_chain() {
        let mut chain = small_chain(8);
        chain.advance_to(SimTime::from_secs(15));
        let before = chain.stats().blocks_main;
        // Keep node 0 alive: it is the driver's RPC endpoint/observer.
        for i in 4..8 {
            chain.inject(Fault::Crash(NodeId(i)));
        }
        chain.advance_to(SimTime::from_secs(60));
        let after = chain.stats().blocks_main;
        assert!(after > before + 10, "chain stalled after crashes: {before} → {after}");
    }

    #[test]
    fn historical_balance_query() {
        let mut chain = small_chain(2);
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::from_public_key(&alice.public());
        // Preload two blocks transferring value.
        let bob = Address::from_index(999);
        chain.preload_blocks(vec![
            vec![Transaction::signed(&alice, 0, bob, 100, vec![])],
            vec![Transaction::signed(&alice, 1, bob, 50, vec![])],
        ]);
        let q1 = chain
            .query(&Query::AccountAtBlock { account: alice_addr, height: 1 })
            .unwrap();
        let q2 = chain
            .query(&Query::AccountAtBlock { account: alice_addr, height: 2 })
            .unwrap();
        let b1 = i64::from_le_bytes(q1.data.try_into().unwrap());
        let b2 = i64::from_le_bytes(q2.data.try_into().unwrap());
        assert_eq!(b1 - b2, 50, "second transfer visible between heights");
        // Block tx query decodes the transfers.
        let q = chain.query(&Query::BlockTxs { height: 1 }).unwrap();
        let mut d = bb_types::Decoder::new(&q.data);
        assert_eq!(d.u32().unwrap(), 1);
    }

    #[test]
    fn direct_execution_reports_gas_and_memory() {
        let mut chain = small_chain(1);
        let contract = chain.deploy(&bb_contracts::cpuheavy::bundle());
        let tx = client_tx(1, 0, contract, bb_contracts::cpuheavy::sort_call(2000));
        let res = chain.execute_direct(tx);
        assert!(res.success, "{:?}", res.error);
        assert!(res.gas_used > 100_000);
        assert!(res.modeled_mem > chain.config.costs.mem_base);
        assert!(res.duration > SimDuration::from_micros(1000));
    }

    #[test]
    fn duplicate_submissions_commit_once() {
        let mut chain = small_chain(4);
        let contract = chain.deploy(&donothing::bundle());
        let tx = client_tx(1, 0, contract, donothing::call());
        chain.submit(NodeId(0), tx.clone());
        chain.submit(NodeId(1), tx.clone());
        chain.submit(NodeId(2), tx);
        chain.advance_to(SimTime::from_secs(30));
        let committed: usize =
            chain.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 1);
    }

    #[test]
    fn torn_tail_restart_recovers_durable_prefix_and_catches_up() {
        let mut chain = small_chain(4);
        let contract = chain.deploy(&ycsb::bundle());
        for nonce in 0..30 {
            let tx = client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v"));
            chain.submit(NodeId((nonce % 4) as u32), tx);
        }
        chain.advance_to(SimTime::from_secs(10));
        let durable_root = chain.engine.with_node(3, |n| {
            let head = n.tree.head();
            n.roots[&head]
        });
        // Power cut on node 3: volatile state gone, WAL tail torn.
        chain.inject(Fault::Crash(NodeId(3)));
        chain.inject(Fault::TornTail(NodeId(3)));
        chain.advance_to(SimTime::from_secs(20));
        chain.inject(Fault::Restart(NodeId(3)));
        // The recovered chain must contain the pre-crash durable head state
        // (the crashed node's committed prefix survived the torn tail).
        let recovered_has_root = chain
            .engine
            .with_node(3, |n| n.roots.values().any(|r| *r == durable_root));
        assert!(recovered_has_root, "durable pre-crash root lost in recovery");
        chain.advance_to(SimTime::from_secs(45));
        // Node 3 caught up with the cluster.
        let h3 = chain.engine.with_node(3, |n| n.tree.head_height());
        let h0 = chain.engine.with_node(0, |n| n.tree.head_height());
        assert!(h0.abs_diff(h3) <= 3, "restarted node lags: h0={h0} h3={h3}");
        let stats = chain.stats();
        assert!(stats.recovery_ms > 0, "recovery never completed");
        assert!(stats.resync_blocks > 0, "no blocks were resynced");
        assert!(stats.resync_bytes > 0);
        // And the chain as a whole kept committing after the rejoin.
        let committed: usize = chain.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 30);
    }

    #[test]
    fn deep_gap_restart_uses_snapshot_sync_instead_of_replay() {
        let mut config = EthConfig::with_nodes(4);
        config.pow.base_interval = SimDuration::from_millis(500);
        config.snapshot_sync_blocks = 4; // force the snapshot path
        let mut chain = EthereumChain::new(config);
        let contract = chain.deploy(&ycsb::bundle());
        for nonce in 0..30 {
            let tx = client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v"));
            chain.submit(NodeId((nonce % 4) as u32), tx);
        }
        chain.advance_to(SimTime::from_secs(10));
        chain.inject(Fault::Crash(NodeId(3)));
        // A long outage: the gap is far beyond the 4-block threshold.
        chain.advance_to(SimTime::from_secs(40));
        chain.inject(Fault::Restart(NodeId(3)));
        chain.advance_to(SimTime::from_secs(70));
        let stats = chain.stats();
        assert!(stats.snapshot_chunks > 0, "deep gap closed without snapshot chunks");
        assert!(stats.snapshot_bytes > 0);
        assert!(stats.recovery_ms > 0, "recovery never completed");
        // The deep gap travelled as state chunks; only the blocks mined
        // mid-transfer were replayed.
        let gap_blocks = chain.engine.with_node(0, |n| n.tree.head_height());
        assert!(
            stats.resync_blocks < gap_blocks / 2,
            "snapshot sync still replayed most of the gap: {} of {gap_blocks}",
            stats.resync_blocks
        );
        let h3 = chain.engine.with_node(3, |n| n.tree.head_height());
        let h0 = chain.engine.with_node(0, |n| n.tree.head_height());
        assert!(h0.abs_diff(h3) <= 3, "restarted node lags: h0={h0} h3={h3}");
        // Storage cost-model observability threads through to PlatformStats.
        assert!(stats.storage_logical_bytes > 0);
        assert!(stats.write_amplification().expect("stores saw writes") > 1.0);
    }

    /// Same seed, serial vs forced-parallel: byte-identical results. Mining
    /// races, gossip flips and LSM stores are all lane-local, so thread
    /// scheduling must be invisible.
    #[test]
    fn serial_and_sharded_runs_are_byte_identical() {
        fn run() -> String {
            let mut chain = small_chain(4);
            let contract = chain.deploy(&ycsb::bundle());
            for nonce in 0..25 {
                chain.submit(
                    NodeId((nonce % 4) as u32),
                    client_tx(3, nonce, contract, ycsb::write_call(nonce, b"w")),
                );
            }
            chain.advance_to(SimTime::from_secs(20));
            format!("{:?}\n{:?}", chain.confirmed_blocks_since(0), chain.stats())
        }
        // Only this test in the crate touches the process-global knobs.
        std::env::set_var("BB_SERIAL", "1");
        let serial = run();
        std::env::remove_var("BB_SERIAL");
        std::env::set_var("BB_SHARD_THREADS", "3");
        let sharded = run();
        std::env::remove_var("BB_SHARD_THREADS");
        assert_eq!(serial, sharded);
    }
}
