//! The simulated cluster network.
//!
//! The paper ran on 48 commodity machines behind a 1 Gbps switch; we model
//! that fabric as point-to-point links with a base propagation delay,
//! uniform jitter, and a serialization delay proportional to message size.
//! On top sit the benchmark's failure modes (Section 3.3):
//!
//! - **crash failure**: a node "simply stops" — traffic to and from it is
//!   dropped (Figure 9);
//! - **network delay**: arbitrary extra latency injected per node;
//! - **random response**: messages corrupted in flight (receivers see a
//!   `corrupted` flag; honest protocol layers discard such messages as
//!   signature failures);
//! - **partition attack**: the network is split into groups for a duration,
//!   dropping all cross-group traffic — the double-spend window experiment
//!   of Figure 10.
//!
//! Every byte handed to [`Network::send`] is metered per node per virtual
//! second, which is where Figure 16's network-utilisation curves come from.

use bb_sim::{ByteMeter, SimDuration, SimRng, SimTime};
use bb_types::NodeId;

/// Point-to-point link parameters.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Propagation delay added to every message.
    pub base_delay: SimDuration,
    /// Uniform jitter in `[0, jitter)` added on top.
    pub jitter: SimDuration,
    /// Serialization bandwidth in bytes per second.
    pub bandwidth_bps: u64,
}

impl Default for LinkParams {
    fn default() -> Self {
        // LAN-grade: 0.5 ms propagation, 0.3 ms jitter, 1 Gbps links.
        LinkParams {
            base_delay: SimDuration::from_micros(500),
            jitter: SimDuration::from_micros(300),
            bandwidth_bps: 125_000_000,
        }
    }
}

/// What happened to a message handed to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Will arrive at the destination at `at`. `corrupted` is true when the
    /// fault injector mangled it in flight.
    Deliver {
        /// Arrival time.
        at: SimTime,
        /// Mangled in flight?
        corrupted: bool,
    },
    /// Silently dropped.
    Dropped(DropReason),
}

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The sender has crashed.
    SenderCrashed,
    /// The receiver has crashed.
    ReceiverCrashed,
    /// Sender and receiver are in different partition groups.
    Partitioned,
}

/// Cumulative network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages accepted for delivery.
    pub delivered: u64,
    /// Messages dropped by faults.
    pub dropped: u64,
    /// Messages corrupted in flight (still delivered).
    pub corrupted: u64,
    /// Total payload bytes accepted.
    pub bytes: u64,
}

/// The simulated network fabric for one experiment.
pub struct Network {
    n: u32,
    link: LinkParams,
    rng: SimRng,
    crashed: Vec<bool>,
    extra_delay: Vec<SimDuration>,
    corrupt_prob: Vec<f64>,
    /// Partition group per node; `None` = fully connected.
    groups: Option<Vec<u8>>,
    tx_meters: Vec<ByteMeter>,
    rx_meters: Vec<ByteMeter>,
    stats: NetStats,
}

impl Network {
    /// Fully connected fabric over `n` nodes.
    pub fn new(n: u32, link: LinkParams, rng: SimRng) -> Self {
        Network {
            n,
            link,
            rng,
            crashed: vec![false; n as usize],
            extra_delay: vec![SimDuration::ZERO; n as usize],
            corrupt_prob: vec![0.0; n as usize],
            groups: None,
            tx_meters: (0..n).map(|_| ByteMeter::new()).collect(),
            rx_meters: (0..n).map(|_| ByteMeter::new()).collect(),
            stats: NetStats::default(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Minimum possible cross-node delivery latency: the base link delay.
    ///
    /// Jitter, serialization time and injected `Fault::Delay` extras only
    /// *add* to it, so this is a sound lookahead bound for the conservative
    /// sharded scheduler (`bb_sim::shard`) even while faults are active.
    pub fn min_latency(&self) -> SimDuration {
        self.link.base_delay
    }

    /// Offer a `bytes`-sized message from `from` to `to` at time `now`.
    pub fn send(&mut self, now: SimTime, from: NodeId, to: NodeId, bytes: u64) -> Delivery {
        assert!(from.0 < self.n && to.0 < self.n, "node out of range");
        if self.crashed[from.index()] {
            self.stats.dropped += 1;
            return Delivery::Dropped(DropReason::SenderCrashed);
        }
        if self.crashed[to.index()] {
            self.stats.dropped += 1;
            return Delivery::Dropped(DropReason::ReceiverCrashed);
        }
        if let Some(groups) = &self.groups {
            if groups[from.index()] != groups[to.index()] {
                self.stats.dropped += 1;
                return Delivery::Dropped(DropReason::Partitioned);
            }
        }
        let serialization =
            SimDuration::from_micros(bytes.saturating_mul(1_000_000) / self.link.bandwidth_bps.max(1));
        let jitter = self.rng.jitter(SimDuration::ZERO, self.link.jitter.max(SimDuration::from_micros(1)));
        let delay = self.link.base_delay
            + jitter
            + serialization
            + self.extra_delay[from.index()]
            + self.extra_delay[to.index()];
        let corrupted = {
            let p = self.corrupt_prob[from.index()].max(self.corrupt_prob[to.index()]);
            p > 0.0 && self.rng.chance(p)
        };
        self.tx_meters[from.index()].record(now, bytes);
        let at = now + delay;
        self.rx_meters[to.index()].record(at, bytes);
        self.stats.delivered += 1;
        self.stats.bytes += bytes;
        if corrupted {
            self.stats.corrupted += 1;
        }
        Delivery::Deliver { at, corrupted }
    }

    /// Crash a node: it stops sending and receiving (Figure 9).
    pub fn crash(&mut self, node: NodeId) {
        self.crashed[node.index()] = true;
    }

    /// Bring a crashed node back (it has missed everything in between).
    pub fn recover(&mut self, node: NodeId) {
        self.crashed[node.index()] = false;
    }

    /// Is the node currently crashed?
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Nodes currently alive.
    pub fn alive_count(&self) -> u32 {
        self.crashed.iter().filter(|&&c| !c).count() as u32
    }

    /// Inject fixed extra latency on all of a node's links.
    pub fn set_extra_delay(&mut self, node: NodeId, d: SimDuration) {
        self.extra_delay[node.index()] = d;
    }

    /// Corrupt messages touching `node` with probability `p`.
    pub fn set_corrupt_prob(&mut self, node: NodeId, p: f64) {
        self.corrupt_prob[node.index()] = p.clamp(0.0, 1.0);
    }

    /// Split the fabric: `groups[i]` is node i's side. Cross-group traffic
    /// drops until [`Network::heal`].
    pub fn partition(&mut self, groups: Vec<u8>) {
        assert_eq!(groups.len(), self.n as usize, "one group per node");
        self.groups = Some(groups);
    }

    /// Split the first `left` nodes from the rest (the paper's
    /// half-and-half attack).
    pub fn partition_in_half(&mut self, left: u32) {
        let groups = (0..self.n).map(|i| u8::from(i >= left)).collect();
        self.partition(groups);
    }

    /// Remove the partition.
    pub fn heal(&mut self) {
        self.groups = None;
    }

    /// Is a partition active?
    pub fn is_partitioned(&self) -> bool {
        self.groups.is_some()
    }

    /// Can `a` currently talk to `b`?
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        !self.crashed[a.index()]
            && !self.crashed[b.index()]
            && self
                .groups
                .as_ref()
                .is_none_or(|g| g[a.index()] == g[b.index()])
    }

    /// Cumulative counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Per-second outbound Mbps for `node` (Figure 16).
    pub fn tx_mbps_series(&self, node: NodeId) -> Vec<f64> {
        self.tx_meters[node.index()].mbps_series()
    }

    /// Per-second inbound Mbps for `node`.
    pub fn rx_mbps_series(&self, node: NodeId) -> Vec<f64> {
        self.rx_meters[node.index()].mbps_series()
    }

    /// Total bytes sent by `node`.
    pub fn tx_bytes(&self, node: NodeId) -> u64 {
        self.tx_meters[node.index()].total()
    }
}

/// Window-merge adapter for the sharded scheduler: a send either yields a
/// clean delivery time or nothing (dropped or corrupted — either way no
/// event arrives; metering and stats are recorded exactly as in
/// [`Network::send`]).
impl bb_sim::shard::Outboard for Network {
    fn send(&mut self, now: SimTime, from: u32, to: u32, bytes: u64) -> Option<SimTime> {
        match Network::send(self, now, NodeId(from), NodeId(to), bytes) {
            Delivery::Deliver { at, corrupted } if !corrupted => Some(at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(n: u32) -> Network {
        Network::new(n, LinkParams::default(), SimRng::seed_from_u64(7))
    }

    fn assert_delivers(d: Delivery) -> SimTime {
        match d {
            Delivery::Deliver { at, corrupted } => {
                assert!(!corrupted);
                at
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn delivery_includes_propagation_and_serialization() {
        let mut n = net(2);
        let now = SimTime::from_secs(1);
        let at = assert_delivers(n.send(now, NodeId(0), NodeId(1), 125_000_000)); // 1 second of bytes
        let delay = at - now;
        assert!(delay >= SimDuration::from_secs(1), "serialization missing: {delay:?}");
        assert!(delay < SimDuration::from_millis(1100), "delay too large: {delay:?}");
    }

    #[test]
    fn small_messages_arrive_fast() {
        let mut n = net(2);
        let at = assert_delivers(n.send(SimTime::ZERO, NodeId(0), NodeId(1), 100));
        assert!(at.since(SimTime::ZERO) < SimDuration::from_millis(2));
        assert!(at.since(SimTime::ZERO) >= SimDuration::from_micros(500));
    }

    #[test]
    fn crash_drops_both_directions() {
        let mut n = net(3);
        n.crash(NodeId(1));
        assert_eq!(
            n.send(SimTime::ZERO, NodeId(1), NodeId(0), 10),
            Delivery::Dropped(DropReason::SenderCrashed)
        );
        assert_eq!(
            n.send(SimTime::ZERO, NodeId(0), NodeId(1), 10),
            Delivery::Dropped(DropReason::ReceiverCrashed)
        );
        assert!(n.is_crashed(NodeId(1)));
        assert_eq!(n.alive_count(), 2);
        // Unrelated pairs still work.
        assert_delivers(n.send(SimTime::ZERO, NodeId(0), NodeId(2), 10));
        n.recover(NodeId(1));
        assert_delivers(n.send(SimTime::ZERO, NodeId(0), NodeId(1), 10));
    }

    #[test]
    fn partition_blocks_cross_group_only() {
        let mut n = net(4);
        n.partition_in_half(2);
        assert!(n.is_partitioned());
        assert_eq!(
            n.send(SimTime::ZERO, NodeId(0), NodeId(2), 10),
            Delivery::Dropped(DropReason::Partitioned)
        );
        assert_delivers(n.send(SimTime::ZERO, NodeId(0), NodeId(1), 10));
        assert_delivers(n.send(SimTime::ZERO, NodeId(2), NodeId(3), 10));
        assert!(!n.connected(NodeId(1), NodeId(2)));
        assert!(n.connected(NodeId(2), NodeId(3)));
        n.heal();
        assert_delivers(n.send(SimTime::ZERO, NodeId(0), NodeId(2), 10));
        assert!(n.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn extra_delay_adds_up() {
        let mut fast = net(2);
        let base = assert_delivers(fast.send(SimTime::ZERO, NodeId(0), NodeId(1), 10));
        let mut slow = net(2);
        slow.set_extra_delay(NodeId(1), SimDuration::from_millis(50));
        let delayed = assert_delivers(slow.send(SimTime::ZERO, NodeId(0), NodeId(1), 10));
        assert!(
            delayed.since(SimTime::ZERO) >= base.since(SimTime::ZERO) + SimDuration::from_millis(49)
        );
    }

    #[test]
    fn corruption_probability_applies() {
        let mut n = net(2);
        n.set_corrupt_prob(NodeId(1), 1.0);
        match n.send(SimTime::ZERO, NodeId(0), NodeId(1), 10) {
            Delivery::Deliver { corrupted, .. } => assert!(corrupted),
            other => panic!("{other:?}"),
        }
        n.set_corrupt_prob(NodeId(1), 0.0);
        match n.send(SimTime::ZERO, NodeId(0), NodeId(1), 10) {
            Delivery::Deliver { corrupted, .. } => assert!(!corrupted),
            other => panic!("{other:?}"),
        }
        assert_eq!(n.stats().corrupted, 1);
    }

    #[test]
    fn partial_corruption_rate_is_probabilistic() {
        let mut n = net(2);
        n.set_corrupt_prob(NodeId(0), 0.3);
        let mut corrupted = 0;
        for _ in 0..2000 {
            if let Delivery::Deliver { corrupted: c, .. } =
                n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1)
            {
                corrupted += u32::from(c);
            }
        }
        let rate = corrupted as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn metering_tracks_bytes_per_second() {
        let mut n = net(2);
        n.send(SimTime::ZERO, NodeId(0), NodeId(1), 1_000_000);
        n.send(SimTime::from_secs(2), NodeId(0), NodeId(1), 500_000);
        assert_eq!(n.tx_bytes(NodeId(0)), 1_500_000);
        let series = n.tx_mbps_series(NodeId(0));
        assert!((series[0] - 8.0).abs() < 1e-9);
        assert!((series[2] - 4.0).abs() < 1e-9);
        assert_eq!(n.stats().delivered, 2);
        assert_eq!(n.stats().bytes, 1_500_000);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_node_panics() {
        let mut n = net(2);
        n.send(SimTime::ZERO, NodeId(0), NodeId(5), 1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let run = || {
            let mut n = Network::new(4, LinkParams::default(), SimRng::seed_from_u64(99));
            (0..50)
                .map(|i| n.send(SimTime::ZERO, NodeId(i % 4), NodeId((i + 1) % 4), 100 + i as u64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
