//! Configuration of the Parity-like platform.

use bb_ethereum::EvmCosts;
use bb_net::LinkParams;
use bb_sim::SimDuration;

/// Full configuration of a Parity-like authority network.
#[derive(Debug, Clone)]
pub struct ParityConfig {
    /// Authority (server) count.
    pub nodes: u32,
    /// Authority-round step length (the paper set `stepDuration = 1`).
    pub step_duration: SimDuration,
    /// Blocks from the tip before confirmation.
    pub confirm_depth: u64,
    /// Network link parameters.
    pub link: LinkParams,
    /// Gas budget per block.
    pub block_gas_limit: u64,
    /// Gas budget per transaction.
    pub tx_gas_limit: u64,
    /// Execution cost constants (Parity's optimised interpreter).
    pub costs: EvmCosts,
    /// Per-transaction signing cost on the *block producer's* critical
    /// path — the bottleneck the paper isolated ("the bottleneck in Parity
    /// is due to transaction signing", Section 4.2.3). At 22 ms/tx a
    /// 1-second step fits ≈45 transactions.
    pub produce_sign_cost: SimDuration,
    /// Admission queue bound per server: submissions beyond roughly
    /// `1/sig_verify` tx/s (≈80) back up here and overflow is throttled at
    /// the RPC.
    pub admission_queue_cap: usize,
    /// Bound on the per-node transaction queue (Parity's bounded tx pool):
    /// once this many admitted transactions await inclusion, further
    /// submissions get a "queue full" RPC error. About 1.5 blocks worth —
    /// accepted transactions therefore confirm within a few steps, keeping
    /// latency low and flat while the producer seals at its constant ~45
    /// tx/s (Section 4.2.3 / Figure 5).
    pub tx_pool_cap: usize,
    /// Age-out horizon for future-nonced pool entries, in blocks. A
    /// transaction whose nonce gap persists this many blocks past its
    /// admission is evicted from the pool — without it, a byzantine
    /// client's nonce-gap flood pins every bounded pool at `tx_pool_cap`
    /// permanently and all later submissions error "queue full" forever.
    pub pool_evict_blocks: u64,
    /// Node RAM for the in-memory state cap.
    pub node_mem_bytes: u64,
    /// Client→server RPC latency.
    pub rpc_delay: SimDuration,
    /// Cores reserved for the node process.
    pub cores: u32,
    /// Post-restart catch-up policy: gaps strictly larger than this many
    /// blocks are closed by chunked snapshot sync (state store + trusted
    /// chain) instead of per-block re-execution. `u64::MAX` disables it.
    pub snapshot_sync_blocks: u64,
    /// Payload bytes per snapshot sync chunk.
    pub snapshot_chunk_bytes: usize,
    /// Determinism seed.
    pub seed: u64,
}

impl ParityConfig {
    /// The paper's deployment at `nodes` authorities.
    pub fn with_nodes(nodes: u32) -> ParityConfig {
        ParityConfig {
            nodes,
            step_duration: SimDuration::from_secs(1),
            confirm_depth: 2,
            link: LinkParams::default(),
            block_gas_limit: 50_000_000,
            tx_gas_limit: 1_000_000,
            costs: EvmCosts::parity(),
            produce_sign_cost: SimDuration::from_millis(22),
            admission_queue_cap: 160,
            tx_pool_cap: 64,
            pool_evict_blocks: 8,
            node_mem_bytes: 32 << 30,
            rpc_delay: SimDuration::from_micros(800),
            cores: 8,
            snapshot_sync_blocks: 24,
            snapshot_chunk_bytes: 256 << 10,
            seed: 42,
        }
    }

    /// Maximum transactions one block can carry, by producer budget.
    pub fn max_txs_per_block(&self) -> usize {
        (self.step_duration.as_micros() / self.produce_sign_cost.as_micros().max(1)) as usize
    }
}

impl Default for ParityConfig {
    fn default() -> Self {
        ParityConfig::with_nodes(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_budget_matches_paper_peak() {
        let c = ParityConfig::default();
        // ≈45 transactions per 1-second block — the paper's ~45 tx/s peak.
        assert_eq!(c.max_txs_per_block(), 45);
    }

    #[test]
    fn admission_rate_is_about_80_per_second() {
        let c = ParityConfig::default();
        let per_sec = 1_000_000 / c.costs.sig_verify.as_micros();
        assert_eq!(per_sec, 80);
    }
}
