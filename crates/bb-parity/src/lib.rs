//! The Parity-like platform (Parity v1.6.0 stand-in).
//!
//! Same account/trie data model and bytecode contracts as the Ethereum-like
//! platform (it reuses `bb_ethereum::state`), but:
//!
//! - **consensus** is Proof-of-Authority (Aura): pre-assigned 1-second
//!   steps, one authority per step, no mining — blocks arrive like
//!   clockwork and fork only under partitions (Section 3.1.1);
//! - **state lives in memory**: "Parity holds all the state information in
//!   memory, so it has better I/O performance but fails to handle large
//!   data" (Section 4.2.2) — the trie's backing store is a capped
//!   [`bb_storage::MemStore`], and IOHeavy runs that blow the cap abort
//!   with out-of-space (Figure 12's 'X');
//! - **the bottleneck is transaction signing**, not consensus: admission
//!   verifies signatures at ≈80 tx/s per server (excess submissions are
//!   throttled at the RPC — Figure 6's flat queue), and the block producer
//!   pays a per-transaction signing cost that caps chain throughput near
//!   45 tx/s regardless of offered load (Figures 5 and 13c).

pub mod chain;
pub mod config;

pub use chain::ParityChain;
pub use config::ParityConfig;
