//! The Parity-like network world and its `BlockchainConnector`.
//!
//! Sharded: each authority is a lane of a [`ShardedEngine`]; every event
//! names the node it mutates, block/transaction gossip rides the network
//! outbox, and the confirmation log lives with the observer (node 0), so a
//! run parallelises across cores while staying byte-identical to the serial
//! path (DESIGN.md §5).

use crate::config::ParityConfig;
use bb_consensus::pow::{BlockTree, InsertOutcome};
use bb_consensus::PoaSchedule;
use bb_crypto::Hash256;
use bb_ethereum::state::{AccountState, BlockExecOutcome, TxInvalid};
use bb_merkle::merkle_root;
use bb_net::Network;
use bb_sim::{CpuMeter, Effects, ShardedEngine, ShardedWorld, SimDuration, SimRng, SimTime};
use bb_storage::{KvStore, MemStore};
use bb_svm::{Vm, VmConfig};
use bb_types::{Address, Block, BlockHeader, BlockSummary, Encoder, NodeId, Transaction, TxId};
use blockbench::connector::{
    BlockchainConnector, DirectExec, Fault, PlatformStats, Query, QueryError, QueryResult,
};
use blockbench::contract::ContractBundle;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Events of the Parity world.
#[derive(Debug, Clone)]
pub enum PoaEvent {
    /// An authority-round step boundary.
    Step {
        /// Step index.
        index: u64,
    },
    /// A transaction cleared a server's signature-verification queue.
    TxAdmit {
        /// Admitting server.
        to: NodeId,
        /// The transaction.
        tx: Arc<Transaction>,
        /// First hop (gossip to peers) or relayed.
        relayed: bool,
    },
    /// A block reached a node.
    BlockArrive {
        /// Receiving node.
        to: NodeId,
        /// The block body.
        block: Arc<Block>,
        /// Sender (for ancestor fetches).
        from: NodeId,
    },
    /// Ancestor fetch.
    BlockRequest {
        /// Peer asked.
        to: NodeId,
        /// Wanted block.
        wanted: Hash256,
        /// Asker.
        from: NodeId,
    },
    /// A restarted authority asks a peer for its head block; the reply seeds
    /// the ancestor walk-back that re-downloads the whole chain (Parity's
    /// state is purely in-memory, so a restart recovers from genesis).
    HeadRequest {
        /// Peer asked.
        to: NodeId,
        /// Recovering node.
        from: NodeId,
    },
    /// A deeply-lagged restarted authority asks a peer for a chunk of its
    /// state store (trie nodes, content-addressed) instead of replaying the
    /// whole chain transaction-by-transaction.
    SnapshotRequest {
        /// Serving peer.
        to: NodeId,
        /// Recovering node.
        from: NodeId,
        /// Resume after this key (exclusive); `None` starts the stream.
        after: Option<Vec<u8>>,
    },
    /// One bounded chunk of a peer's state store.
    SnapshotChunk {
        /// Recovering node.
        to: NodeId,
        /// Serving peer.
        from: NodeId,
        /// Raw `(key, value)` store entries.
        entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
        /// True when the peer's key space is exhausted.
        done: bool,
    },
    /// After the state transfer: ask for main-chain bodies from `height` up.
    ChainRequest {
        /// Serving peer.
        to: NodeId,
        /// Recovering node.
        from: NodeId,
        /// First wanted height.
        height: u64,
    },
    /// A bounded run of main-chain `(block, state root)` pairs. The roots
    /// are trusted — the recovering node's freshly transferred store already
    /// holds every trie node they reach, so adoption skips re-execution.
    ChainChunk {
        /// Recovering node.
        to: NodeId,
        /// Serving peer.
        from: NodeId,
        /// Consecutive main-chain blocks with their committed roots.
        blocks: Arc<Vec<(Arc<Block>, Hash256)>>,
        /// True when the peer's head was reached.
        done: bool,
    },
}

struct PoaNode {
    state: AccountState<MemStore>,
    tree: BlockTree,
    bodies: HashMap<Hash256, Arc<Block>>,
    roots: HashMap<Hash256, Hash256>,
    receipts: HashMap<Hash256, Vec<(TxId, bool)>>,
    pool: VecDeque<Arc<Transaction>>,
    pool_ids: HashSet<TxId>,
    /// Head height at admission, per pooled transaction — the age-out
    /// clock for future-nonced entries that would otherwise pin the
    /// bounded pool (see `ParityConfig::pool_evict_blocks`).
    pool_admitted: HashMap<TxId, u64>,
    seen: HashSet<TxId>,
    /// Main-chain blocks whose transactions were pruned from the pool (side
    /// blocks never are — their transactions must stay minable if the fork
    /// loses without a reorg through this node's head).
    pruned: HashSet<Hash256>,
    cpu: CpuMeter,
    /// Signature-verification pipeline state.
    admission_busy_until: SimTime,
    admission_backlog: usize,
    /// Set while a restarted node re-downloads the chain; cleared (into
    /// `recovery_ms`) once its head reaches the sync target.
    restarted_at: Option<SimTime>,
    /// Peer head height learned from the first post-restart block arrival.
    sync_target: Option<u64>,
    /// Longest completed restart→caught-up recovery on this node, virtual ms.
    recovery_ms: u64,
    /// Blocks re-fetched from peers while catching up after a restart.
    resync_blocks: u64,
    /// Bytes of those blocks.
    resync_bytes: u64,
    /// Set while a snapshot transfer is in flight; block gossip is ignored
    /// until the transferred chain is adopted wholesale.
    snapshot_syncing: bool,
    /// Snapshot chunks received (state + chain phases).
    snapshot_chunks: u64,
    /// Payload bytes of those chunks.
    snapshot_bytes: u64,
    /// Optimistic-executor counters (see `PlatformStats`).
    exec_conflicts: u64,
    exec_serial_us: u64,
    exec_modeled_us: u64,
    /// Observer state — populated only on node 0.
    confirmed: Vec<BlockSummary>,
    confirmed_height: u64,
}

/// Read-only context shared by every lane. Crash flags live here (not in
/// the per-lane nodes) because [`ShardedWorld::route`] needs them to pick
/// the authority lane for a `Step` event; they only change between runs,
/// via `inject`.
struct PoaCtx {
    config: ParityConfig,
    vm: Vm,
    schedule: PoaSchedule,
    crashed: Vec<bool>,
}

impl PoaCtx {
    fn step_authority(&self, index: u64) -> Option<NodeId> {
        let live: Vec<bool> = self.crashed.iter().map(|&c| !c).collect();
        self.schedule.authority_for_step_live(index, &live)
    }
}

/// The sharded-world marker type for Parity.
struct PoaWorld;

/// The Parity-like platform.
pub struct ParityChain {
    config: ParityConfig,
    engine: ShardedEngine<PoaWorld>,
    network: Network,
    started: bool,
    mem_peak: u64,
    /// The genesis block every restart rebuilds from (Parity's state is
    /// in-memory only — a restarted authority recovers genesis + deployed
    /// contracts locally and re-downloads everything else from peers).
    genesis_block: Arc<Block>,
    /// Contracts installed at setup time, replayed into a rebuilt state.
    deployed: Vec<(Address, blockbench::contract::SvmContract)>,
}

/// Observer counter indices (commutative run-wide tallies).
const BLOCKS_PRODUCED: usize = 0;

impl ShardedWorld for PoaWorld {
    type Event = PoaEvent;
    type Node = PoaNode;
    type Ctx = PoaCtx;

    fn route(ctx: &PoaCtx, event: &PoaEvent) -> u32 {
        match event {
            // A step fires on its authority's lane. If every authority is
            // crashed the event still needs a home: lane 0 keeps the round
            // ticking without producing.
            PoaEvent::Step { index } => ctx.step_authority(*index).map_or(0, |a| a.0),
            PoaEvent::TxAdmit { to, .. }
            | PoaEvent::BlockArrive { to, .. }
            | PoaEvent::BlockRequest { to, .. }
            | PoaEvent::HeadRequest { to, .. }
            | PoaEvent::SnapshotRequest { to, .. }
            | PoaEvent::SnapshotChunk { to, .. }
            | PoaEvent::ChainRequest { to, .. }
            | PoaEvent::ChainChunk { to, .. } => to.0,
        }
    }

    fn handle(
        ctx: &PoaCtx,
        lane: u32,
        node: &mut PoaNode,
        now: SimTime,
        event: PoaEvent,
        fx: &mut Effects<PoaEvent>,
    ) {
        let id = NodeId(lane);
        match event {
            PoaEvent::Step { index } => on_step(ctx, node, id, now, index, fx),
            PoaEvent::TxAdmit { tx, relayed, .. } => on_admit(ctx, node, id, now, tx, relayed, fx),
            PoaEvent::BlockArrive { block, from, .. } => on_block(ctx, node, id, now, block, from, fx),
            PoaEvent::BlockRequest { wanted, from, .. } => {
                on_block_request(ctx, node, id, now, wanted, from, fx)
            }
            PoaEvent::HeadRequest { from, .. } => on_head_request(ctx, node, id, from, fx),
            PoaEvent::SnapshotRequest { from, after, .. } => {
                on_snapshot_request(ctx, node, id, from, after, fx)
            }
            PoaEvent::SnapshotChunk { from, entries, done, .. } => {
                on_snapshot_chunk(ctx, node, id, from, entries, done, fx)
            }
            PoaEvent::ChainRequest { from, height, .. } => {
                on_chain_request(ctx, node, id, from, height, fx)
            }
            PoaEvent::ChainChunk { from, blocks, done, .. } => {
                on_chain_chunk(ctx, node, id, now, from, blocks, done, fx)
            }
        }
    }
}

fn on_step(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    now: SimTime,
    index: u64,
    fx: &mut Effects<PoaEvent>,
) {
    // Schedule the next boundary first, so the round never stops. The step
    // duration (~1s) dwarfs the conservative lookahead, so the cross-lane
    // hop is always legal; its authority lane is resolved when the emit is
    // merged.
    let next = ctx.schedule.step_start(index + 1);
    fx.schedule_at(next, PoaEvent::Step { index: index + 1 });

    if ctx.crashed[me.index()] {
        return; // crashed after this step was routed here
    }
    match ctx.step_authority(index) {
        // A fault injected while this step was in flight moved the slot to
        // a different authority: the slot is simply missed (one skipped
        // block), rather than migrating mid-air to another lane.
        Some(authority) if authority == me => {}
        _ => return,
    }
    let block = build_block(ctx, node, now, me, index);
    fx.count(BLOCKS_PRODUCED, 1);
    let block = Arc::new(block);
    adopt_block(ctx, node, now, me, Arc::clone(&block), None, fx);
    for peer in (0..ctx.config.nodes).map(NodeId) {
        if peer == me {
            continue;
        }
        let b = Arc::clone(&block);
        fx.send(peer.0, block.byte_size(), move |_at| PoaEvent::BlockArrive {
            to: peer,
            block: b,
            from: me,
        });
    }
    if me.index() == 0 {
        refresh_confirmed(ctx, node, now);
    }
}

fn build_block(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    now: SimTime,
    producer: NodeId,
    step: u64,
) -> Block {
    let max_txs = ctx.config.max_txs_per_block();
    let parent = node.tree.head();
    let parent_root = node.roots[&parent];
    let height = node.tree.head_height() + 1;
    node.state.set_root(parent_root);

    let mut included = Vec::new();
    let mut receipts = Vec::new();
    let mut gas_total = 0u64;
    let mut cpu_time = SimDuration::ZERO;
    // Future-nonce transactions buffered per sender, nonce-ordered (see
    // the Ethereum chain's `build_block` for why a plain FIFO pass over
    // the arrival-ordered pool starves blocks down to a handful of
    // transactions). Sender map ordered for a deterministic put-back.
    let mut future: std::collections::BTreeMap<Address, std::collections::BTreeMap<u64, Arc<Transaction>>> =
        Default::default();
    'fill: while included.len() < max_txs {
        let Some(tx) = node.pool.pop_front() else {
            break;
        };
        if !node.pool_ids.contains(&tx.id()) {
            continue;
        }
        let mut next = Some(tx);
        while let Some(tx) = next.take() {
            match node.state.apply_transaction(&tx, height, &ctx.vm, ctx.config.tx_gas_limit) {
                Ok(res) => {
                    gas_total += res.gas_used.max(1000);
                    cpu_time += ctx.config.produce_sign_cost
                        + ctx.config.costs.exec_time(res.gas_used.max(1000));
                    node.pool_ids.remove(&tx.id());
                    node.pool_admitted.remove(&tx.id());
                    receipts.push((tx.id(), res.success));
                    let nonce = tx.nonce;
                    let from = tx.from;
                    included.push(Arc::clone(&tx));
                    if included.len() >= max_txs || gas_total >= ctx.config.block_gas_limit {
                        break 'fill;
                    }
                    if let Some(q) = future.get_mut(&from) {
                        next = q.remove(&(nonce + 1));
                        if q.is_empty() {
                            future.remove(&from);
                        }
                    }
                }
                Err(TxInvalid::BadNonce { expected, got }) if got > expected => {
                    future.entry(tx.from).or_default().insert(got, tx);
                }
                Err(_) => {
                    node.pool_ids.remove(&tx.id());
                    node.pool_admitted.remove(&tx.id());
                }
            }
        }
    }
    // Put still-blocked transactions back — unless their nonce gap has
    // now persisted past the eviction horizon, in which case the sender's
    // predecessor is presumed lost (or never existed: a nonce-gap flood)
    // and the entry ages out instead of pinning the pool forever.
    for (_, q) in future {
        for (_, tx) in q {
            let admitted = *node.pool_admitted.entry(tx.id()).or_insert(height);
            if height.saturating_sub(admitted) > ctx.config.pool_evict_blocks {
                node.pool_ids.remove(&tx.id());
                node.pool_admitted.remove(&tx.id());
            } else {
                node.pool.push_front(tx);
            }
        }
    }
    node.cpu.charge(now, cpu_time);

    let header = BlockHeader {
        parent,
        height,
        timestamp_us: now.as_micros(),
        tx_root: merkle_root(&included.iter().map(|t| t.id().0).collect::<Vec<_>>()),
        state_root: node.state.root(),
        proposer: producer,
        difficulty: 1,
        round: step,
    };
    let block = Block { header, txs: included };
    let id = block.id();
    // Seal the block's state. A failed commit means the in-memory store is
    // full; the overlay keeps serving reads, so the chain limps on with
    // unpersisted roots — the OOM surfaces through execute_direct and the
    // memory counters, not a crash.
    let _ = node.state.commit_block();
    node.roots.insert(id, node.state.root());
    node.receipts.insert(id, receipts);
    block
}

/// Execute a sealed block's transactions through the optimistic parallel
/// executor (state must already sit at the parent root). Charging is left
/// to the caller: full validation bills the serial execution time,
/// descendant catch-up keeps its flat per-transaction charge.
fn execute_block_txs(ctx: &PoaCtx, node: &mut PoaNode, block: &Block) -> BlockExecOutcome {
    let outcome = node.state.execute_block(
        &block.txs,
        block.header.height,
        &ctx.vm,
        ctx.config.tx_gas_limit,
        |gas| ctx.config.costs.exec_time(gas.max(1000)).as_micros(),
    );
    for tx in &block.txs {
        node.seen.insert(tx.id());
    }
    node.exec_conflicts += outcome.conflicts;
    node.exec_serial_us += outcome.serial_us;
    node.exec_modeled_us += outcome.modeled_us;
    outcome
}

fn adopt_block(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    now: SimTime,
    me: NodeId,
    block: Arc<Block>,
    request_from: Option<NodeId>,
    fx: &mut Effects<PoaEvent>,
) {
    let id = block.id();
    if node.bodies.contains_key(&id) && node.roots.contains_key(&id) {
        return;
    }
    let parent = block.header.parent;
    if let Some(&parent_root) = node.roots.get(&parent) {
        if !node.roots.contains_key(&id) {
            node.state.set_root(parent_root);
            let outcome = execute_block_txs(ctx, node, &block);
            node.cpu.charge(now, SimDuration::from_micros(outcome.serial_us));
            let _ = node.state.commit_block();
            node.roots.insert(id, node.state.root());
            node.receipts.insert(id, outcome.receipts);
        }
        node.bodies.insert(id, Arc::clone(&block));
        let old_head = node.tree.head();
        if let InsertOutcome::NewHead { reorged: true } =
            node.tree.insert(id, parent, block.header.difficulty)
        {
            readopt_abandoned(node, old_head);
        }
        execute_connected_descendants(ctx, node, now, id);
        // Drop the (possibly new) main branch's transactions from the
        // pool, after any reorg re-adoption above.
        prune_main_chain(node);
    } else {
        node.tree.insert(id, parent, block.header.difficulty);
        node.bodies.insert(id, Arc::clone(&block));
        if let Some(from) = request_from {
            fx.send(from.0, 64, move |_at| PoaEvent::BlockRequest {
                to: from,
                wanted: parent,
                from: me,
            });
        }
    }
}

fn execute_connected_descendants(ctx: &PoaCtx, node: &mut PoaNode, now: SimTime, from_id: Hash256) {
    let mut frontier = vec![from_id];
    while let Some(parent_id) = frontier.pop() {
        let Some(&parent_root) = node.roots.get(&parent_id) else {
            continue;
        };
        let children: Vec<Arc<Block>> = node
            .bodies
            .values()
            .filter(|b| b.header.parent == parent_id && !node.roots.contains_key(&b.id()))
            .cloned()
            .collect();
        for child in children {
            node.state.set_root(parent_root);
            let outcome = execute_block_txs(ctx, node, &child);
            // Catch-up keeps its historical flat per-transaction charge.
            node.cpu.charge(now, SimDuration::from_micros(100 * child.txs.len() as u64));
            let cid = child.id();
            let _ = node.state.commit_block();
            node.roots.insert(cid, node.state.root());
            node.receipts.insert(cid, outcome.receipts);
            frontier.push(cid);
        }
    }
}

/// Remove the transactions of blocks that joined this node's main chain
/// from its pool. Walks head→genesis, stopping at the first block
/// already pruned, so each block is processed once.
fn prune_main_chain(node: &mut PoaNode) {
    let mut cursor = node.tree.head();
    while node.pruned.insert(cursor) {
        let Some(body) = node.bodies.get(&cursor) else {
            break;
        };
        for tx in &body.txs {
            node.pool_ids.remove(&tx.id());
            node.pool_admitted.remove(&tx.id());
        }
        cursor = body.header.parent;
    }
}

fn readopt_abandoned(node: &mut PoaNode, old_head: Hash256) {
    let mut cursor = old_head;
    while !node.tree.on_main_chain(&cursor) {
        let Some(body) = node.bodies.get(&cursor) else {
            break;
        };
        let parent = body.header.parent;
        // Bodies hold `Arc<Transaction>`: re-adopting bumps refcounts
        // instead of deep-cloning every transaction body.
        let txs = body.txs.clone();
        let height = node.tree.head_height();
        for tx in txs {
            if node.pool_ids.insert(tx.id()) {
                node.pool_admitted.insert(tx.id(), height);
                node.pool.push_back(tx);
            }
        }
        cursor = parent;
    }
}

fn on_admit(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    now: SimTime,
    tx: Arc<Transaction>,
    relayed: bool,
    fx: &mut Effects<PoaEvent>,
) {
    if !relayed {
        node.admission_backlog = node.admission_backlog.saturating_sub(1);
        node.cpu.charge(now, ctx.config.costs.sig_verify);
    }
    if ctx.crashed[me.index()] {
        return;
    }
    if !node.seen.insert(tx.id()) {
        return;
    }
    node.pool_ids.insert(tx.id());
    node.pool_admitted.insert(tx.id(), node.tree.head_height());
    node.pool.push_back(Arc::clone(&tx));
    if !relayed {
        // Gossip to the other authorities so whoever owns the next step
        // can include it.
        let size = tx.byte_size();
        for peer in (0..ctx.config.nodes).map(NodeId) {
            if peer == me {
                continue;
            }
            let tx = Arc::clone(&tx);
            fx.send(peer.0, size, move |_at| PoaEvent::TxAdmit { to: peer, tx, relayed: true });
        }
    }
}

fn on_block(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    now: SimTime,
    block: Arc<Block>,
    from: NodeId,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] {
        return;
    }
    if node.restarted_at.is_some() {
        if node.snapshot_syncing {
            // A wholesale transfer is in flight; the chain arrives via
            // `ChainChunk` and anything mined meanwhile is re-fetched by
            // the post-transfer head walk.
            return;
        }
        if node.sync_target.is_none() {
            // First arrival after a restart is the head-request reply: its
            // height is the gap this node must close.
            node.sync_target = Some(block.header.height.max(node.tree.head_height()));
            let gap = block.header.height.saturating_sub(node.tree.head_height());
            if gap > ctx.config.snapshot_sync_blocks {
                // Too far behind to replay block-by-block: pull the peer's
                // state store in bounded chunks, then the chain with
                // trusted roots.
                node.snapshot_syncing = true;
                fx.send(from.0, 64, move |_at| PoaEvent::SnapshotRequest {
                    to: from,
                    from: me,
                    after: None,
                });
                return;
            }
        }
        node.resync_blocks += 1;
        node.resync_bytes += block.byte_size();
    }
    adopt_block(ctx, node, now, me, block, Some(from), fx);
    if let (Some(t0), Some(target)) = (node.restarted_at, node.sync_target) {
        if node.tree.head_height() >= target {
            // A completed recovery records at least 1 ms: `recovery_ms == 0`
            // means "never caught up", and a sub-millisecond catch-up (no
            // blocks mined during the outage) must not read as that.
            node.recovery_ms = node.recovery_ms.max((now.since(t0).as_micros() / 1000).max(1));
            node.restarted_at = None;
            node.sync_target = None;
        }
    }
    if me.index() == 0 {
        refresh_confirmed(ctx, node, now);
    }
}

fn on_block_request(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    _now: SimTime,
    wanted: Hash256,
    from: NodeId,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] {
        return;
    }
    if let Some(body) = node.bodies.get(&wanted) {
        let body = Arc::clone(body);
        let bytes = body.byte_size();
        fx.send(from.0, bytes, move |_at| PoaEvent::BlockArrive { to: from, block: body, from: me });
    }
}

/// Serve a recovering peer our current head body; the ancestor fetch then
/// walks the rest of the chain back to genesis.
fn on_head_request(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    from: NodeId,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] {
        return;
    }
    let head = node.tree.head();
    if let Some(body) = node.bodies.get(&head) {
        let body = Arc::clone(body);
        let bytes = body.byte_size();
        fx.send(from.0, bytes, move |_at| PoaEvent::BlockArrive { to: from, block: body, from: me });
    }
}

/// Serve one bounded chunk of this node's state store to a recovering peer.
/// Parity's store is in-memory and content-addressed (trie nodes are never
/// rewritten), so a plain cursor scan over the live store is consistent:
/// entries added behind the cursor mid-transfer are newer trie nodes the
/// trailing chain chunks' roots never reach.
fn on_snapshot_request(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    from: NodeId,
    after: Option<Vec<u8>>,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] {
        return;
    }
    let (entries, done) = node
        .state
        .store_mut()
        .scan_range_chunk(after.as_deref(), ctx.config.snapshot_chunk_bytes)
        .expect("in-memory store scans are infallible");
    let bytes = 16 + entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
    let entries = Arc::new(entries);
    fx.send(from.0, bytes, move |_at| PoaEvent::SnapshotChunk {
        to: from,
        from: me,
        entries,
        done,
    });
}

/// Apply a received state chunk and request the next one; once the key
/// space is exhausted, switch to the chain phase.
fn on_snapshot_chunk(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    from: NodeId,
    entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
    done: bool,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] || !node.snapshot_syncing {
        return;
    }
    node.snapshot_chunks += 1;
    node.snapshot_bytes +=
        16 + entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum::<u64>();
    let mut batch = bb_storage::WriteBatch::new();
    for (k, v) in entries.iter() {
        batch.put(k, v);
    }
    // A full store is the same OOM surface as execution: the transfer keeps
    // going and the missing nodes resurface through reads, not a panic.
    let _ = node.state.store_mut().apply_batch(batch);
    if !done {
        let after = entries.last().map(|(k, _)| k.clone());
        fx.send(from.0, 64, move |_at| PoaEvent::SnapshotRequest { to: from, from: me, after });
    } else {
        fx.send(from.0, 64, move |_at| PoaEvent::ChainRequest { to: from, from: me, height: 1 });
    }
}

/// Serve a bounded run of main-chain `(block, root)` pairs from `height` up.
fn on_chain_request(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    from: NodeId,
    height: u64,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] {
        return;
    }
    let head_height = node.tree.head_height();
    let mut blocks = Vec::new();
    let mut bytes = 16u64;
    let mut h = height;
    while h <= head_height {
        let Some(id) = node.tree.main_chain_at(h) else { break };
        let (Some(body), Some(&root)) = (node.bodies.get(&id), node.roots.get(&id)) else { break };
        bytes += body.byte_size() + 32;
        blocks.push((Arc::clone(body), root));
        h += 1;
        if bytes as usize >= ctx.config.snapshot_chunk_bytes {
            break;
        }
    }
    let done = h > head_height;
    let blocks = Arc::new(blocks);
    fx.send(from.0, bytes, move |_at| PoaEvent::ChainChunk { to: from, from: me, blocks, done });
}

/// Adopt a transferred chain run wholesale: the roots are trusted and every
/// trie node they reach already sits in the freshly transferred store, so
/// no transaction is re-executed. Receipts are not reconstructed (the
/// observer never snapshot-syncs in the experiments; queries that need
/// them fall back to the serving peers).
fn on_chain_chunk(
    ctx: &PoaCtx,
    node: &mut PoaNode,
    me: NodeId,
    now: SimTime,
    from: NodeId,
    blocks: Arc<Vec<(Arc<Block>, Hash256)>>,
    done: bool,
    fx: &mut Effects<PoaEvent>,
) {
    if ctx.crashed[me.index()] || !node.snapshot_syncing {
        return;
    }
    node.snapshot_chunks += 1;
    node.snapshot_bytes +=
        16 + blocks.iter().map(|(b, _)| b.byte_size() + 32).sum::<u64>();
    for (block, root) in blocks.iter() {
        let id = block.id();
        node.tree.insert(id, block.header.parent, block.header.difficulty);
        node.bodies.insert(id, Arc::clone(block));
        node.roots.insert(id, *root);
        node.receipts.insert(id, Vec::new());
        for tx in &block.txs {
            node.seen.insert(tx.id());
        }
    }
    if !done {
        let next = node.tree.head_height() + 1;
        fx.send(from.0, 64, move |_at| PoaEvent::ChainRequest { to: from, from: me, height: next });
        return;
    }
    let head = node.tree.head();
    node.state.set_root(node.roots[&head]);
    node.snapshot_syncing = false;
    prune_main_chain(node);
    if let (Some(t0), Some(target)) = (node.restarted_at, node.sync_target) {
        if node.tree.head_height() >= target {
            node.recovery_ms = node.recovery_ms.max((now.since(t0).as_micros() / 1000).max(1));
            node.restarted_at = None;
            node.sync_target = None;
        }
    }
    // Close the gap mined during the transfer through the normal head walk.
    fx.send(from.0, 64, move |_at| PoaEvent::HeadRequest { to: from, from: me });
    if me.index() == 0 {
        refresh_confirmed(ctx, node, now);
    }
}

/// Advance the observer's confirmation log. Only node 0's tree feeds it, so
/// this runs only after events on lane 0 — exactly the events that can
/// change what node 0 considers confirmed.
fn refresh_confirmed(ctx: &PoaCtx, node: &mut PoaNode, now: SimTime) {
    let depth = ctx.config.confirm_depth;
    let upto = node.tree.confirmed_height(depth);
    while node.confirmed_height < upto {
        let h = node.confirmed_height + 1;
        let Some(id) = node.tree.main_chain_at(h) else {
            break;
        };
        let (Some(body), Some(receipts)) = (node.bodies.get(&id), node.receipts.get(&id)) else {
            break;
        };
        node.confirmed.push(BlockSummary {
            id,
            height: h,
            proposer: body.header.proposer,
            confirmed_at_us: now.as_micros(),
            txs: receipts.clone(),
        });
        node.confirmed_height = h;
    }
}

impl ParityChain {
    /// Build an authority network per `config`.
    pub fn new(config: ParityConfig) -> ParityChain {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let genesis_header = BlockHeader {
            parent: Hash256::ZERO,
            height: 0,
            timestamp_us: 0,
            tx_root: Hash256::ZERO,
            state_root: Hash256::ZERO,
            proposer: NodeId(0),
            difficulty: 0,
            round: 0,
        };
        let genesis_block = Arc::new(Block { header: genesis_header, txs: Vec::new() });
        let genesis = genesis_block.id();
        let vm = Vm::new(
            VmConfig {
                max_memory: ((config.node_mem_bytes.saturating_sub(config.costs.mem_base)) as f64
                    / config.costs.mem_overhead) as usize,
                ..VmConfig::default()
            },
            Default::default(),
        );
        let state_cap = config.node_mem_bytes.saturating_sub(config.costs.mem_base);
        let nodes = (0..config.nodes)
            .map(|_| {
                let mut state = AccountState::new(MemStore::with_capacity_cap(state_cap));
                for seed in 0..1024 {
                    let kp = bb_crypto::KeyPair::from_seed(seed);
                    state
                        .credit(&Address::from_public_key(&kp.public()), i64::MAX / 4)
                        .expect("genesis fits in memory");
                }
                let mut node = PoaNode {
                    state,
                    tree: BlockTree::new(genesis),
                    bodies: HashMap::new(),
                    roots: HashMap::new(),
                    receipts: HashMap::new(),
                    pool: VecDeque::new(),
                    pool_ids: HashSet::new(),
                    pool_admitted: HashMap::new(),
                    seen: HashSet::new(),
                    pruned: HashSet::from([genesis]),
                    cpu: CpuMeter::new(config.cores),
                    admission_busy_until: SimTime::ZERO,
                    admission_backlog: 0,
                    restarted_at: None,
                    sync_target: None,
                    recovery_ms: 0,
                    resync_blocks: 0,
                    resync_bytes: 0,
                    snapshot_syncing: false,
                    snapshot_chunks: 0,
                    snapshot_bytes: 0,
                    exec_conflicts: 0,
                    exec_serial_us: 0,
                    exec_modeled_us: 0,
                    confirmed: Vec::new(),
                    confirmed_height: 0,
                };
                node.bodies.insert(genesis, Arc::clone(&genesis_block));
                node.state.commit_block().expect("genesis fits in memory");
                node.roots.insert(genesis, node.state.root());
                node.receipts.insert(genesis, Vec::new());
                node
            })
            .collect();
        let schedule =
            PoaSchedule::new((0..config.nodes).map(NodeId).collect(), config.step_duration);
        let network = Network::new(config.nodes, config.link.clone(), rng.fork());
        let ctx = PoaCtx {
            config: config.clone(),
            vm,
            schedule,
            crashed: vec![false; config.nodes as usize],
        };
        let engine = ShardedEngine::new(ctx, nodes, network.min_latency());
        ParityChain {
            config,
            engine,
            network,
            started: false,
            mem_peak: 0,
            genesis_block,
            deployed: Vec::new(),
        }
    }

    /// Restart a crashed authority with total amnesia: rebuild genesis state
    /// (client funding + deployed contracts) locally, then re-download the
    /// chain from a live peer and re-execute it. Parity keeps no durable
    /// store, so this is the whole recovery story.
    fn restart_node(&mut self, id: NodeId) {
        let now = self.engine.now();
        let peer = (0..self.config.nodes)
            .map(NodeId)
            .find(|p| *p != id && !self.network.is_crashed(*p));
        let genesis_block = Arc::clone(&self.genesis_block);
        let genesis = genesis_block.id();
        let state_cap = self.config.node_mem_bytes.saturating_sub(self.config.costs.mem_base);
        let deployed = self.deployed.clone();
        self.engine.with_node_mut(id.0, |n| {
            let mut state = AccountState::new(MemStore::with_capacity_cap(state_cap));
            for seed in 0..1024 {
                let kp = bb_crypto::KeyPair::from_seed(seed);
                state
                    .credit(&Address::from_public_key(&kp.public()), i64::MAX / 4)
                    .expect("genesis fits in memory");
            }
            for (addr, svm) in &deployed {
                state.install_contract(addr, svm).expect("genesis fits in memory");
            }
            state.commit_block().expect("genesis fits in memory");
            let mut node = PoaNode {
                state,
                tree: BlockTree::new(genesis),
                bodies: HashMap::new(),
                roots: HashMap::new(),
                receipts: HashMap::new(),
                pool: VecDeque::new(),
                pool_ids: HashSet::new(),
                pool_admitted: HashMap::new(),
                seen: HashSet::new(),
                pruned: HashSet::from([genesis]),
                cpu: std::mem::replace(&mut n.cpu, CpuMeter::new(1)),
                admission_busy_until: SimTime::ZERO,
                admission_backlog: 0,
                restarted_at: peer.map(|_| now),
                sync_target: None,
                recovery_ms: n.recovery_ms,
                resync_blocks: n.resync_blocks,
                resync_bytes: n.resync_bytes,
                snapshot_syncing: false,
                snapshot_chunks: n.snapshot_chunks,
                snapshot_bytes: n.snapshot_bytes,
                exec_conflicts: n.exec_conflicts,
                exec_serial_us: n.exec_serial_us,
                exec_modeled_us: n.exec_modeled_us,
                // Observer history survives as driver-side bookkeeping.
                confirmed: std::mem::take(&mut n.confirmed),
                confirmed_height: n.confirmed_height,
            };
            node.bodies.insert(genesis, Arc::clone(&genesis_block));
            node.roots.insert(genesis, node.state.root());
            node.receipts.insert(genesis, Vec::new());
            *n = node;
        });
        self.network.recover(id);
        self.engine.with_ctx_mut(|ctx| ctx.crashed[id.index()] = false);
        if let Some(peer) = peer {
            self.engine.schedule(now, PoaEvent::HeadRequest { to: peer, from: id });
        }
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let now = self.engine.now();
        let (next, index) = self.engine.with_ctx(|ctx| {
            let next = ctx.schedule.next_step_boundary(now + SimDuration::from_micros(1));
            (next, ctx.schedule.step_at(next))
        });
        self.engine.schedule(next, PoaEvent::Step { index });
    }
}

impl BlockchainConnector for ParityChain {
    fn name(&self) -> &'static str {
        "parity"
    }

    fn node_count(&self) -> u32 {
        self.config.nodes
    }

    fn deploy(&mut self, bundle: &ContractBundle) -> Address {
        assert!(!self.started, "deploy contracts before the run starts");
        let addr = Address::contract(&Address::ZERO, self.engine.with_node(0, |n| n.seen.len()) as u64);
        for i in 0..self.config.nodes {
            self.engine.with_node_mut(i, |node| {
                let head = node.tree.head();
                let root = node.roots[&head];
                node.state.set_root(root);
                node.state.install_contract(&addr, &bundle.svm).expect("setup store healthy");
                node.state.commit_block().expect("setup store healthy");
                node.roots.insert(head, node.state.root());
            });
        }
        self.deployed.push((addr, bundle.svm.clone()));
        addr
    }

    fn submit(&mut self, server: NodeId, tx: Transaction) -> bool {
        self.start();
        if self.network.is_crashed(server) {
            // A crashed node's RPC endpoint refuses connections; the client
            // sees the failure and does not burn a nonce on it. Without this
            // the client's nonce counter runs ahead of the dead node's pool
            // and every later transaction it signs is permanently future.
            return false;
        }
        let now = self.engine.now();
        let rpc_delay = self.config.rpc_delay;
        let sig_verify = self.config.costs.sig_verify;
        let queue_cap = self.config.admission_queue_cap;
        let pool_cap = self.config.tx_pool_cap;
        let done = self.engine.with_node_mut(server.0, |node| {
            if node.admission_backlog >= queue_cap {
                // RPC throttled: Parity's ~80 tx/s per-server signing bound.
                return None;
            }
            if node.pool_ids.len() >= pool_cap {
                // Transaction queue full: without this bound, admission (~80
                // tx/s/server) outruns the ~45 tx/s producer and accepted
                // transactions queue for the rest of the run — Parity instead
                // errors at the RPC, which is what keeps its latency low and
                // flat while throughput stays constant (Figure 5).
                return None;
            }
            let start = node.admission_busy_until.max(now + rpc_delay);
            let done = start + sig_verify;
            node.admission_busy_until = done;
            node.admission_backlog += 1;
            Some(done)
        });
        let Some(done) = done else {
            return false;
        };
        self.engine
            .schedule(done, PoaEvent::TxAdmit { to: server, tx: Arc::new(tx), relayed: false });
        true
    }

    fn advance_to(&mut self, t: SimTime) {
        self.start();
        self.engine.run_until(t, &mut self.network);
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn confirmed_blocks_since(&mut self, height: u64) -> Vec<BlockSummary> {
        self.engine.with_node(0, |node| {
            node.confirmed.iter().filter(|b| b.height > height).cloned().collect()
        })
    }

    fn query(&mut self, q: &Query) -> Result<QueryResult, QueryError> {
        self.engine.with_ctx_node_mut(0, |ctx, node| match q {
            Query::BlockTxs { height } => {
                let id = node.tree.main_chain_at(*height).ok_or(QueryError::NotFound)?;
                let body = node.bodies.get(&id).ok_or(QueryError::NotFound)?;
                let mut enc = Encoder::with_capacity(body.txs.len() * 48 + 4);
                enc.put_u32(body.txs.len() as u32);
                for tx in &body.txs {
                    enc.put_raw(tx.from.as_bytes()).put_raw(tx.to.as_bytes()).put_u64(tx.value);
                }
                let cost = SimDuration::from_micros(15 + 3 * body.txs.len() as u64);
                Ok(QueryResult { data: enc.finish(), server_cost: cost })
            }
            Query::AccountAtBlock { account, height } => {
                let id = node.tree.main_chain_at(*height).ok_or(QueryError::NotFound)?;
                let root = *node.roots.get(&id).ok_or(QueryError::NotFound)?;
                let acct = node
                    .state
                    .account_at(root, account)
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                Ok(QueryResult {
                    data: acct.balance.to_le_bytes().to_vec(),
                    server_cost: SimDuration::from_micros(40), // in-memory state: faster reads
                })
            }
            Query::Contract { address, payload } => {
                let head = node.tree.head();
                let root = node.roots[&head];
                node.state.set_root(root);
                let kp = bb_crypto::KeyPair::from_seed(0);
                let acct = node
                    .state
                    .account(&Address::from_public_key(&kp.public()))
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                let tx = Transaction::signed(&kp, acct.nonce, *address, 0, payload.clone());
                let height = node.tree.head_height();
                let res = node
                    .state
                    .apply_transaction(&tx, height, &ctx.vm, ctx.config.tx_gas_limit)
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                node.state.set_root(root);
                if !res.success {
                    return Err(QueryError::Contract(res.error.unwrap_or_else(|| "reverted".into())));
                }
                Ok(QueryResult {
                    data: res.output,
                    server_cost: ctx.config.costs.exec_time(res.gas_used),
                })
            }
        })
    }

    fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                self.network.crash(node);
                self.engine.with_ctx_mut(|ctx| ctx.crashed[node.index()] = true);
                // Amnesia: the pool and the state trie's caches die with the
                // process; everything else dies at Restart (handlers no-op
                // while crashed, so keeping the chain copies around until
                // then is observationally identical — and lets the gentle
                // legacy Recover resurrect them).
                self.engine.with_node_mut(node.0, |n| {
                    n.pool.clear();
                    n.pool_ids.clear();
                    n.pool_admitted.clear();
                    n.state.drop_volatile();
                });
            }
            Fault::Recover(node) => {
                self.network.recover(node);
                self.engine.with_ctx_mut(|ctx| ctx.crashed[node.index()] = false);
            }
            Fault::Restart(node) => self.restart_node(node),
            // Parity holds no durable files: a power cut tears nothing and
            // rot has nothing to rot. These faults are no-ops here.
            Fault::TornTail(_) | Fault::BitRot(_, _) => {}
            Fault::Delay(node, d) => self.network.set_extra_delay(node, d),
            Fault::Corrupt(node, p) => self.network.set_corrupt_prob(node, p),
            Fault::PartitionHalf { left } => self.network.partition_in_half(left),
            Fault::Heal => self.network.heal(),
        }
    }

    fn stats(&self) -> PlatformStats {
        let n = self.config.nodes as usize;
        let mut cpu: Vec<f64> = Vec::new();
        let mut net: Vec<f64> = Vec::new();
        let mut mem_peak = self.mem_peak.max(self.config.costs.mem_base);
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        let (mut flushed, mut dropped, mut batches) = (0u64, 0u64, 0u64);
        let mut recovery_ms = 0u64;
        let (mut resync_blocks, mut resync_bytes) = (0u64, 0u64);
        let (mut snap_chunks, mut snap_bytes) = (0u64, 0u64);
        let (mut store_written, mut store_logical) = (0u64, 0u64);
        let (mut exec_conflicts, mut exec_serial_us, mut exec_modeled_us) = (0u64, 0u64, 0u64);
        for i in 0..self.config.nodes {
            self.engine.with_node(i, |node| {
                let (h, m) = node.state.trie_cache_stats();
                cache_hits += h;
                cache_misses += m;
                let (f, d) = node.state.trie_flush_stats();
                flushed += f;
                dropped += d;
                batches += node.state.store().stats().batch_writes;
                recovery_ms = recovery_ms.max(node.recovery_ms);
                resync_blocks += node.resync_blocks;
                resync_bytes += node.resync_bytes;
                snap_chunks += node.snapshot_chunks;
                snap_bytes += node.snapshot_bytes;
                store_written += node.state.store().stats().bytes_written;
                store_logical += node.state.store().stats().logical_bytes;
                exec_conflicts += node.exec_conflicts;
                exec_serial_us += node.exec_serial_us;
                exec_modeled_us += node.exec_modeled_us;
                let series = node.cpu.utilisation_series();
                if series.len() > cpu.len() {
                    cpu.resize(series.len(), 0.0);
                }
                for (j, v) in series.iter().enumerate() {
                    cpu[j] += v / n as f64;
                }
                mem_peak =
                    mem_peak.max(self.config.costs.mem_base + node.state.store().stats().mem_bytes);
            });
            let tx = self.network.tx_mbps_series(NodeId(i));
            if tx.len() > net.len() {
                net.resize(tx.len(), 0.0);
            }
            for (j, v) in tx.iter().enumerate() {
                net[j] += v / n as f64;
            }
        }
        let (blocks_main, txs_committed) = self.engine.with_node(0, |node| {
            (node.tree.main_chain_len(), node.confirmed.iter().map(|b| b.txs.len() as u64).sum())
        });
        PlatformStats {
            blocks_total: self.engine.counter(BLOCKS_PRODUCED),
            blocks_main,
            txs_committed,
            disk_bytes: 0, // all state in memory
            mem_peak_bytes: mem_peak,
            cpu_utilisation: cpu,
            net_mbps: net,
            net_bytes: self.network.stats().bytes,
            trie_cache_hits: cache_hits,
            trie_cache_misses: cache_misses,
            state_nodes_flushed: flushed,
            state_nodes_dropped: dropped,
            batch_put_count: batches,
            recovery_ms,
            resync_blocks,
            resync_bytes,
            snapshot_chunks: snap_chunks,
            snapshot_bytes: snap_bytes,
            storage_bytes_written: store_written,
            storage_logical_bytes: store_logical,
            exec_conflicts,
            exec_serial_us,
            exec_modeled_us,
            ..Default::default()
        }
    }

    fn preload_blocks(&mut self, blocks: Vec<Vec<Transaction>>) {
        assert!(!self.started, "preload before the run starts");
        for txs in blocks {
            let txs: Vec<Arc<Transaction>> = txs.into_iter().map(Arc::new).collect();
            let now = self.engine.now();
            for i in 0..self.config.nodes {
                self.engine.with_ctx_node_mut(i, |ctx, node| {
                    let parent = node.tree.head();
                    let parent_root = node.roots[&parent];
                    let height = node.tree.head_height() + 1;
                    node.state.set_root(parent_root);
                    let mut receipts = Vec::with_capacity(txs.len());
                    for tx in &txs {
                        let ok = node
                            .state
                            .apply_transaction(tx, height, &ctx.vm, ctx.config.tx_gas_limit)
                            .map(|r| r.success)
                            .unwrap_or(false);
                        receipts.push((tx.id(), ok));
                    }
                    let header = BlockHeader {
                        parent,
                        height,
                        timestamp_us: now.as_micros(),
                        tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
                        state_root: node.state.root(),
                        proposer: NodeId(0),
                        difficulty: 1,
                        round: 0,
                    };
                    let block = Arc::new(Block { header, txs: txs.clone() });
                    let id = block.id();
                    node.state.commit_block().expect("setup store healthy");
                    node.roots.insert(id, node.state.root());
                    node.receipts.insert(id, receipts.clone());
                    node.bodies.insert(id, Arc::clone(&block));
                    node.tree.insert(id, parent, 1);
                    node.pruned.insert(id);
                    if i == 0 {
                        node.confirmed.push(BlockSummary {
                            id,
                            height,
                            proposer: NodeId(0),
                            confirmed_at_us: now.as_micros(),
                            txs: receipts,
                        });
                        node.confirmed_height = height;
                    }
                });
                if i == 0 {
                    self.engine.bump_counter(BLOCKS_PRODUCED, 1);
                }
            }
        }
    }

    fn execute_direct(&mut self, tx: Transaction) -> DirectExec {
        let (exec, modeled) = self.engine.with_ctx_node_mut(0, |ctx, node| {
            let head = node.tree.head();
            let root = node.roots[&head];
            node.state.set_root(root);
            let height = node.tree.head_height();
            match node.state.apply_transaction(&tx, height, &ctx.vm, u64::MAX / 2) {
                Ok(res) => {
                    let modeled = ctx.config.costs.modeled_mem(res.vm_peak_mem);
                    // Persist the sealed state. When the in-memory store is
                    // out of capacity the commit fails and the execution is
                    // reported as an out-of-space failure — this is where
                    // Parity's memory ceiling bites on IOHeavy.
                    let (success, error) = match node.state.commit_block() {
                        Ok(()) => {
                            node.roots.insert(head, node.state.root());
                            (res.success, res.error)
                        }
                        Err(e) => (false, Some(e.to_string())),
                    };
                    (
                        DirectExec {
                            success,
                            duration: ctx.config.costs.sig_verify
                                + ctx.config.costs.exec_time(res.gas_used),
                            gas_used: res.gas_used,
                            modeled_mem: modeled,
                            output: res.output,
                            error,
                        },
                        modeled,
                    )
                }
                Err(e) => (
                    DirectExec {
                        success: false,
                        duration: ctx.config.costs.sig_verify,
                        gas_used: 0,
                        modeled_mem: 0,
                        output: Vec::new(),
                        error: Some(e.to_string()),
                    },
                    0,
                ),
            }
        });
        self.mem_peak = self.mem_peak.max(modeled);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_contracts::{donothing, ycsb};
    use bb_crypto::KeyPair;

    fn chain(nodes: u32) -> ParityChain {
        ParityChain::new(ParityConfig::with_nodes(nodes))
    }

    fn client_tx(seed: u64, nonce: u64, to: Address, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, 0, payload)
    }

    #[test]
    fn blocks_tick_like_clockwork() {
        let mut c = chain(4);
        c.advance_to(SimTime::from_secs(30));
        let stats = c.stats();
        // One block per second; no forks beyond the block still in flight.
        assert!(stats.blocks_main >= 25, "main chain {}", stats.blocks_main);
        assert!(stats.blocks_total - stats.blocks_main <= 1);
    }

    #[test]
    fn transactions_confirm_in_seconds() {
        let mut c = chain(4);
        let contract = c.deploy(&ycsb::bundle());
        for nonce in 0..10 {
            assert!(c.submit(NodeId((nonce % 4) as u32), client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v"))));
        }
        c.advance_to(SimTime::from_secs(15));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 10);
    }

    #[test]
    fn producer_budget_caps_throughput() {
        let mut c = chain(2);
        let contract = c.deploy(&donothing::bundle());
        // Offer far more than 45 tx/s for 10 s from many senders.
        let mut submitted = 0;
        for seed in 0..20u64 {
            for nonce in 0..60 {
                if c.submit(NodeId((seed % 2) as u32), client_tx(seed, nonce, contract, donothing::call())) {
                    submitted += 1;
                }
            }
        }
        assert!(submitted > 300, "admission rejected too aggressively: {submitted}");
        c.advance_to(SimTime::from_secs(10));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        // ~45 tx per block-second, minus confirmation lag.
        let rate = committed as f64 / 10.0;
        assert!(rate > 25.0 && rate < 60.0, "rate {rate}");
    }

    #[test]
    fn admission_throttles_at_the_rpc() {
        let mut c = chain(1);
        let contract = c.deploy(&donothing::bundle());
        let mut accepted = 0;
        let mut rejected = 0;
        for nonce in 0..1000 {
            if c.submit(NodeId(0), client_tx(1, nonce, contract, donothing::call())) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "throttling never kicked in");
        assert_eq!(accepted, c.config.admission_queue_cap as u32);
    }

    #[test]
    fn crash_leaves_throughput_steady() {
        let mut c = chain(8);
        c.advance_to(SimTime::from_secs(20));
        let before = c.stats().blocks_main;
        for i in 4..8 {
            c.inject(Fault::Crash(NodeId(i)));
        }
        c.advance_to(SimTime::from_secs(40));
        let after = c.stats().blocks_main;
        // Survivors take over the dead authorities' slots: ~1 block/s still
        // (at most one slot is missed while the crash propagates to a step
        // already in flight).
        assert!(after - before >= 16, "throughput dropped: {before} → {after}");
    }

    #[test]
    fn partition_forks_then_heals() {
        let mut c = chain(8);
        c.advance_to(SimTime::from_secs(10));
        c.inject(Fault::PartitionHalf { left: 4 });
        c.advance_to(SimTime::from_secs(40));
        c.inject(Fault::Heal);
        c.advance_to(SimTime::from_secs(80));
        let stats = c.stats();
        assert!(
            stats.blocks_total > stats.blocks_main,
            "no forks under partition: total={} main={}",
            stats.blocks_total,
            stats.blocks_main
        );
        let heads: Vec<u64> =
            (0..8).map(|i| c.engine.with_node(i, |n| n.tree.head_height())).collect();
        let spread = heads.iter().max().unwrap() - heads.iter().min().unwrap();
        assert!(spread <= 2, "heads did not reconverge: {heads:?}");
    }

    #[test]
    fn in_memory_state_cap_produces_oom() {
        let mut config = ParityConfig::with_nodes(1);
        config.node_mem_bytes = config.costs.mem_base + (3 << 20); // tiny state budget
        let mut c = ParityChain::new(config);
        let contract = c.deploy(&bb_contracts::ioheavy::bundle());
        // Write batches until the in-memory trie blows the cap.
        let mut saw_oom = false;
        for i in 0..40u64 {
            let tx = client_tx(1, i, contract, bb_contracts::ioheavy::write_call(i * 500, 500));
            let res = c.execute_direct(tx);
            if !res.success {
                let err = res.error.unwrap_or_default();
                assert!(err.contains("out of space") || err.contains("storage"), "{err}");
                saw_oom = true;
                break;
            }
        }
        assert!(saw_oom, "state cap never hit");
    }

    #[test]
    fn historical_queries_work() {
        let mut c = chain(2);
        let alice = KeyPair::from_seed(1);
        let bob = Address::from_index(7);
        c.preload_blocks(vec![
            vec![Transaction::signed(&alice, 0, bob, 11, vec![])],
            vec![Transaction::signed(&alice, 1, bob, 22, vec![])],
        ]);
        let r = c.query(&Query::AccountAtBlock { account: bob, height: 1 }).unwrap();
        assert_eq!(i64::from_le_bytes(r.data.try_into().unwrap()), 11);
        let r = c.query(&Query::AccountAtBlock { account: bob, height: 2 }).unwrap();
        assert_eq!(i64::from_le_bytes(r.data.try_into().unwrap()), 33);
    }

    #[test]
    fn restart_rebuilds_from_genesis_and_resyncs_whole_chain() {
        let mut c = chain(4);
        let contract = c.deploy(&ycsb::bundle());
        for nonce in 0..12 {
            c.submit(NodeId((nonce % 4) as u32), client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v")));
        }
        c.advance_to(SimTime::from_secs(8));
        c.inject(Fault::Crash(NodeId(3)));
        c.advance_to(SimTime::from_secs(14));
        let cluster_head = c.engine.with_node(0, |n| n.tree.head_height());
        c.inject(Fault::Restart(NodeId(3)));
        // Immediately after restart the node is back at genesis...
        assert_eq!(c.engine.with_node(3, |n| n.tree.head_height()), 0);
        c.advance_to(SimTime::from_secs(25));
        // ...and later it has re-downloaded and re-executed the whole chain.
        let h3 = c.engine.with_node(3, |n| n.tree.head_height());
        let h0 = c.engine.with_node(0, |n| n.tree.head_height());
        assert!(h0.abs_diff(h3) <= 2, "restarted node lags: h0={h0} h3={h3}");
        // The recovered states agree: same root at the common prefix.
        let common = h3.min(cluster_head);
        let id0 = c.engine.with_node(0, |n| n.tree.main_chain_at(common)).unwrap();
        let r0 = c.engine.with_node(0, |n| n.roots[&id0]);
        let r3 = c.engine.with_node(3, |n| n.roots[&id0]);
        assert_eq!(r0, r3, "re-executed state diverged at height {common}");
        let stats = c.stats();
        assert!(stats.recovery_ms > 0, "recovery never completed");
        // A full resync: at least the whole pre-crash chain was re-fetched.
        assert!(stats.resync_blocks as u64 >= cluster_head, "resynced only {} blocks", stats.resync_blocks);
    }

    #[test]
    fn deep_gap_restart_uses_snapshot_sync_instead_of_replay() {
        let mut config = ParityConfig::with_nodes(4);
        config.snapshot_sync_blocks = 4; // force the snapshot path on a modest gap
        let mut c = ParityChain::new(config);
        let contract = c.deploy(&ycsb::bundle());
        for nonce in 0..16 {
            c.submit(NodeId((nonce % 4) as u32), client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v")));
        }
        c.advance_to(SimTime::from_secs(8));
        c.inject(Fault::Crash(NodeId(3)));
        // Let the gap grow well past the snapshot threshold.
        c.advance_to(SimTime::from_secs(30));
        let cluster_head = c.engine.with_node(0, |n| n.tree.head_height());
        c.inject(Fault::Restart(NodeId(3)));
        c.advance_to(SimTime::from_secs(45));
        let stats = c.stats();
        assert!(stats.snapshot_chunks > 0, "snapshot path never engaged");
        assert!(stats.snapshot_bytes > 0);
        assert!(stats.recovery_ms > 0, "recovery never completed");
        // The chain gap was closed by chunk transfer, not block replay: only
        // the handful of blocks mined during the transfer were re-fetched.
        assert!(
            stats.resync_blocks < cluster_head / 2,
            "replayed {} of a {}-block gap",
            stats.resync_blocks,
            cluster_head
        );
        let h3 = c.engine.with_node(3, |n| n.tree.head_height());
        let h0 = c.engine.with_node(0, |n| n.tree.head_height());
        assert!(h0.abs_diff(h3) <= 2, "restarted node lags: h0={h0} h3={h3}");
        // The transferred store really carries the state: the restarted node
        // resolves an account at a common root without ever re-executing.
        let common = h3.min(cluster_head);
        let id = c.engine.with_node(0, |n| n.tree.main_chain_at(common)).unwrap();
        let root = c.engine.with_node(0, |n| n.roots[&id]);
        assert_eq!(c.engine.with_node(3, |n| n.roots[&id]), root);
        let client = Address::from_public_key(&KeyPair::from_seed(1).public());
        let a0 = c.engine.with_node_mut(0, |n| n.state.account_at(root, &client).unwrap());
        let a3 = c.engine.with_node_mut(3, |n| n.state.account_at(root, &client).unwrap());
        assert_eq!(a0.nonce, a3.nonce);
        assert_eq!(a0.balance, a3.balance);
        assert!(a0.nonce > 0, "client transactions never landed");
    }

    /// Same seed, serial vs forced-parallel: byte-identical results.
    #[test]
    fn serial_and_sharded_runs_are_byte_identical() {
        fn run() -> String {
            let mut c = chain(4);
            let contract = c.deploy(&ycsb::bundle());
            for nonce in 0..30 {
                c.submit(
                    NodeId((nonce % 4) as u32),
                    client_tx(2, nonce, contract, ycsb::write_call(nonce, b"z")),
                );
            }
            c.advance_to(SimTime::from_secs(12));
            format!("{:?}\n{:?}", c.confirmed_blocks_since(0), c.stats())
        }
        // Only this test in the crate touches the process-global knobs.
        std::env::set_var("BB_SERIAL", "1");
        let serial = run();
        std::env::remove_var("BB_SERIAL");
        std::env::set_var("BB_SHARD_THREADS", "3");
        let sharded = run();
        std::env::remove_var("BB_SHARD_THREADS");
        assert_eq!(serial, sharded);
    }
}
