//! The Parity-like network world and its `BlockchainConnector`.

use crate::config::ParityConfig;
use bb_consensus::pow::{BlockTree, InsertOutcome};
use bb_consensus::PoaSchedule;
use bb_crypto::Hash256;
use bb_ethereum::state::{AccountState, TxInvalid};
use bb_merkle::merkle_root;
use bb_net::{Delivery, Network};
use bb_sim::{CpuMeter, Scheduler, SimDuration, SimRng, SimTime, World};
use bb_storage::{KvStore, MemStore};
use bb_svm::{Vm, VmConfig};
use bb_types::{Address, Block, BlockHeader, BlockSummary, Encoder, NodeId, Transaction, TxId};
use blockbench::connector::{
    BlockchainConnector, DirectExec, Fault, PlatformStats, Query, QueryError, QueryResult,
};
use blockbench::contract::ContractBundle;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Events of the Parity world.
#[derive(Debug, Clone)]
pub enum PoaEvent {
    /// An authority-round step boundary.
    Step {
        /// Step index.
        index: u64,
    },
    /// A transaction cleared a server's signature-verification queue.
    TxAdmit {
        /// Admitting server.
        to: NodeId,
        /// The transaction.
        tx: Rc<Transaction>,
        /// First hop (gossip to peers) or relayed.
        relayed: bool,
    },
    /// A block reached a node.
    BlockArrive {
        /// Receiving node.
        to: NodeId,
        /// The block body.
        block: Rc<Block>,
        /// Sender (for ancestor fetches).
        from: NodeId,
    },
    /// Ancestor fetch.
    BlockRequest {
        /// Peer asked.
        to: NodeId,
        /// Wanted block.
        wanted: Hash256,
        /// Asker.
        from: NodeId,
    },
}

struct PoaNode {
    state: AccountState<MemStore>,
    tree: BlockTree,
    bodies: HashMap<Hash256, Rc<Block>>,
    roots: HashMap<Hash256, Hash256>,
    receipts: HashMap<Hash256, Vec<(TxId, bool)>>,
    pool: VecDeque<Rc<Transaction>>,
    pool_ids: HashSet<TxId>,
    seen: HashSet<TxId>,
    /// Main-chain blocks whose transactions were pruned from the pool (side
    /// blocks never are — their transactions must stay minable if the fork
    /// loses without a reorg through this node's head).
    pruned: HashSet<Hash256>,
    cpu: CpuMeter,
    /// Signature-verification pipeline state.
    admission_busy_until: SimTime,
    admission_backlog: usize,
    crashed: bool,
}

/// The Parity-like platform.
pub struct ParityChain {
    config: ParityConfig,
    vm: Vm,
    schedule: PoaSchedule,
    nodes: Vec<PoaNode>,
    network: Network,
    sched: Scheduler<PoaEvent>,
    blocks_produced: u64,
    confirmed: Vec<BlockSummary>,
    confirmed_height: u64,
    started: bool,
    mem_peak: u64,
}

struct PoaView<'a> {
    config: &'a ParityConfig,
    vm: &'a Vm,
    schedule: &'a PoaSchedule,
    nodes: &'a mut Vec<PoaNode>,
    network: &'a mut Network,
    blocks_produced: &'a mut u64,
    confirmed: &'a mut Vec<BlockSummary>,
    confirmed_height: &'a mut u64,
}

impl ParityChain {
    /// Build an authority network per `config`.
    pub fn new(config: ParityConfig) -> ParityChain {
        let mut rng = SimRng::seed_from_u64(config.seed);
        let genesis_header = BlockHeader {
            parent: Hash256::ZERO,
            height: 0,
            timestamp_us: 0,
            tx_root: Hash256::ZERO,
            state_root: Hash256::ZERO,
            proposer: NodeId(0),
            difficulty: 0,
            round: 0,
        };
        let genesis_block = Rc::new(Block { header: genesis_header, txs: Vec::new() });
        let genesis = genesis_block.id();
        let vm = Vm::new(
            VmConfig {
                max_memory: ((config.node_mem_bytes.saturating_sub(config.costs.mem_base)) as f64
                    / config.costs.mem_overhead) as usize,
                ..VmConfig::default()
            },
            Default::default(),
        );
        let state_cap = config.node_mem_bytes.saturating_sub(config.costs.mem_base);
        let nodes = (0..config.nodes)
            .map(|_| {
                let mut state = AccountState::new(MemStore::with_capacity_cap(state_cap));
                for seed in 0..1024 {
                    let kp = bb_crypto::KeyPair::from_seed(seed);
                    state
                        .credit(&Address::from_public_key(&kp.public()), i64::MAX / 4)
                        .expect("genesis fits in memory");
                }
                let mut node = PoaNode {
                    state,
                    tree: BlockTree::new(genesis),
                    bodies: HashMap::new(),
                    roots: HashMap::new(),
                    receipts: HashMap::new(),
                    pool: VecDeque::new(),
                    pool_ids: HashSet::new(),
                    seen: HashSet::new(),
                    pruned: HashSet::from([genesis]),
                    cpu: CpuMeter::new(config.cores),
                    admission_busy_until: SimTime::ZERO,
                    admission_backlog: 0,
                    crashed: false,
                };
                node.bodies.insert(genesis, Rc::clone(&genesis_block));
                node.roots.insert(genesis, node.state.root());
                node.receipts.insert(genesis, Vec::new());
                node
            })
            .collect();
        let schedule =
            PoaSchedule::new((0..config.nodes).map(NodeId).collect(), config.step_duration);
        let network = Network::new(config.nodes, config.link.clone(), rng.fork());
        ParityChain {
            config,
            vm,
            schedule,
            nodes,
            network,
            sched: Scheduler::new(),
            blocks_produced: 0,
            confirmed: Vec::new(),
            confirmed_height: 0,
            started: false,
            mem_peak: 0,
        }
    }

    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let now = self.sched.now();
        let next = self.schedule.next_step_boundary(now + SimDuration::from_micros(1));
        let index = self.schedule.step_at(next);
        self.sched.schedule(next, PoaEvent::Step { index });
    }

    fn run(&mut self, t: SimTime) {
        self.start();
        let ParityChain {
            config,
            vm,
            schedule,
            nodes,
            network,
            sched,
            blocks_produced,
            confirmed,
            confirmed_height,
            ..
        } = self;
        let mut view = PoaView {
            config,
            vm,
            schedule,
            nodes,
            network,
            blocks_produced,
            confirmed,
            confirmed_height,
        };
        sched.run_until(&mut view, t);
    }
}

impl World for PoaView<'_> {
    type Event = PoaEvent;

    fn handle(&mut self, now: SimTime, event: PoaEvent, sched: &mut Scheduler<PoaEvent>) {
        match event {
            PoaEvent::Step { index } => self.on_step(now, index, sched),
            PoaEvent::TxAdmit { to, tx, relayed } => self.on_admit(now, to, tx, relayed, sched),
            PoaEvent::BlockArrive { to, block, from } => self.on_block(now, to, block, from, sched),
            PoaEvent::BlockRequest { to, wanted, from } => {
                self.on_block_request(now, to, wanted, from, sched)
            }
        }
    }
}

impl PoaView<'_> {
    fn on_step(&mut self, now: SimTime, index: u64, sched: &mut Scheduler<PoaEvent>) {
        // Schedule the next boundary first, so the round never stops.
        let next = self.schedule.step_start(index + 1);
        sched.schedule(next, PoaEvent::Step { index: index + 1 });

        let live: Vec<bool> = (0..self.config.nodes)
            .map(|i| !self.nodes[i as usize].crashed)
            .collect();
        let Some(authority) = self.schedule.authority_for_step_live(index, &live) else {
            return; // everyone crashed
        };
        let block = self.build_block(now, authority, index);
        if block.txs.is_empty() && self.nodes[authority.index()].tree.head_height() == 0 {
            // Nothing to seal on an empty chain yet — authorities still
            // produce empty blocks (the chain ticks like clockwork).
        }
        *self.blocks_produced += 1;
        let block = Rc::new(block);
        self.adopt_block(now, authority, Rc::clone(&block), None);
        for peer in (0..self.network.node_count()).map(NodeId) {
            if peer == authority {
                continue;
            }
            if let Delivery::Deliver { at, corrupted } =
                self.network.send(now, authority, peer, block.byte_size())
            {
                if !corrupted {
                    sched.schedule(
                        at,
                        PoaEvent::BlockArrive { to: peer, block: Rc::clone(&block), from: authority },
                    );
                }
            }
        }
        self.refresh_confirmed(now);
    }

    fn build_block(&mut self, now: SimTime, producer: NodeId, step: u64) -> Block {
        let max_txs = self.config.max_txs_per_block();
        let node = &mut self.nodes[producer.index()];
        let parent = node.tree.head();
        let parent_root = node.roots[&parent];
        let height = node.tree.head_height() + 1;
        node.state.set_root(parent_root);

        let mut included = Vec::new();
        let mut receipts = Vec::new();
        let mut gas_total = 0u64;
        let mut cpu_time = SimDuration::ZERO;
        // Future-nonce transactions buffered per sender, nonce-ordered (see
        // the Ethereum chain's `build_block` for why a plain FIFO pass over
        // the arrival-ordered pool starves blocks down to a handful of
        // transactions). Sender map ordered for a deterministic put-back.
        let mut future: std::collections::BTreeMap<Address, std::collections::BTreeMap<u64, Rc<Transaction>>> =
            Default::default();
        'fill: while included.len() < max_txs {
            let Some(tx) = node.pool.pop_front() else {
                break;
            };
            if !node.pool_ids.contains(&tx.id()) {
                continue;
            }
            let mut next = Some(tx);
            while let Some(tx) = next.take() {
                match node.state.apply_transaction(&tx, height, self.vm, self.config.tx_gas_limit)
                {
                    Ok(res) => {
                        gas_total += res.gas_used.max(1000);
                        cpu_time += self.config.produce_sign_cost
                            + self.config.costs.exec_time(res.gas_used.max(1000));
                        node.pool_ids.remove(&tx.id());
                        receipts.push((tx.id(), res.success));
                        let nonce = tx.nonce;
                        let from = tx.from;
                        included.push((*tx).clone());
                        if included.len() >= max_txs || gas_total >= self.config.block_gas_limit {
                            break 'fill;
                        }
                        if let Some(q) = future.get_mut(&from) {
                            next = q.remove(&(nonce + 1));
                            if q.is_empty() {
                                future.remove(&from);
                            }
                        }
                    }
                    Err(TxInvalid::BadNonce { expected, got }) if got > expected => {
                        future.entry(tx.from).or_default().insert(got, tx);
                    }
                    Err(_) => {
                        node.pool_ids.remove(&tx.id());
                    }
                }
            }
        }
        for (_, q) in future {
            for (_, tx) in q {
                node.pool.push_front(tx);
            }
        }
        node.cpu.charge(now, cpu_time);

        let header = BlockHeader {
            parent,
            height,
            timestamp_us: now.as_micros(),
            tx_root: merkle_root(&included.iter().map(|t| t.id().0).collect::<Vec<_>>()),
            state_root: node.state.root(),
            proposer: producer,
            difficulty: 1,
            round: step,
        };
        let block = Block { header, txs: included };
        let id = block.id();
        node.roots.insert(id, node.state.root());
        node.receipts.insert(id, receipts);
        block
    }

    fn adopt_block(
        &mut self,
        now: SimTime,
        at: NodeId,
        block: Rc<Block>,
        sched_from: Option<(NodeId, &mut Scheduler<PoaEvent>)>,
    ) {
        let id = block.id();
        let node = &mut self.nodes[at.index()];
        if node.bodies.contains_key(&id) && node.roots.contains_key(&id) {
            return;
        }
        let parent = block.header.parent;
        if let Some(&parent_root) = node.roots.get(&parent) {
            if !node.roots.contains_key(&id) {
                node.state.set_root(parent_root);
                let mut receipts = Vec::with_capacity(block.txs.len());
                let mut exec_time = SimDuration::ZERO;
                for tx in &block.txs {
                    match node.state.apply_transaction(
                        tx,
                        block.header.height,
                        self.vm,
                        self.config.tx_gas_limit,
                    ) {
                        Ok(res) => {
                            exec_time += self.config.costs.exec_time(res.gas_used.max(1000));
                            receipts.push((tx.id(), res.success));
                        }
                        Err(_) => receipts.push((tx.id(), false)),
                    }
                    node.seen.insert(tx.id());
                }
                node.cpu.charge(now, exec_time);
                node.roots.insert(id, node.state.root());
                node.receipts.insert(id, receipts);
            }
            node.bodies.insert(id, Rc::clone(&block));
            let old_head = node.tree.head();
            if let InsertOutcome::NewHead { reorged: true } =
                node.tree.insert(id, parent, block.header.difficulty)
            {
                self.readopt_abandoned(at, old_head);
            }
            self.execute_connected_descendants(now, at, id);
            // Drop the (possibly new) main branch's transactions from the
            // pool, after any reorg re-adoption above.
            self.prune_main_chain(at);
        } else {
            node.tree.insert(id, parent, block.header.difficulty);
            node.bodies.insert(id, Rc::clone(&block));
            if let Some((from, sched)) = sched_from {
                if let Delivery::Deliver { at: t, corrupted } = self.network.send(now, at, from, 64)
                {
                    if !corrupted {
                        sched.schedule(t, PoaEvent::BlockRequest { to: from, wanted: parent, from: at });
                    }
                }
            }
        }
    }

    fn execute_connected_descendants(&mut self, now: SimTime, at: NodeId, from_id: Hash256) {
        let node = &mut self.nodes[at.index()];
        let mut frontier = vec![from_id];
        while let Some(parent_id) = frontier.pop() {
            let Some(&parent_root) = node.roots.get(&parent_id) else {
                continue;
            };
            let children: Vec<Rc<Block>> = node
                .bodies
                .values()
                .filter(|b| b.header.parent == parent_id && !node.roots.contains_key(&b.id()))
                .cloned()
                .collect();
            for child in children {
                node.state.set_root(parent_root);
                let mut receipts = Vec::with_capacity(child.txs.len());
                for tx in &child.txs {
                    let ok = node
                        .state
                        .apply_transaction(tx, child.header.height, self.vm, self.config.tx_gas_limit)
                        .map(|r| r.success)
                        .unwrap_or(false);
                    receipts.push((tx.id(), ok));
                    node.seen.insert(tx.id());
                }
                node.cpu.charge(now, SimDuration::from_micros(100 * child.txs.len() as u64));
                let cid = child.id();
                node.roots.insert(cid, node.state.root());
                node.receipts.insert(cid, receipts);
                frontier.push(cid);
            }
        }
    }

    /// Remove the transactions of blocks that joined this node's main chain
    /// from its pool. Walks head→genesis, stopping at the first block
    /// already pruned, so each block is processed once.
    fn prune_main_chain(&mut self, at: NodeId) {
        let node = &mut self.nodes[at.index()];
        let mut cursor = node.tree.head();
        while node.pruned.insert(cursor) {
            let Some(body) = node.bodies.get(&cursor) else {
                break;
            };
            for tx in &body.txs {
                node.pool_ids.remove(&tx.id());
            }
            cursor = body.header.parent;
        }
    }

    fn readopt_abandoned(&mut self, at: NodeId, old_head: Hash256) {
        let node = &mut self.nodes[at.index()];
        let mut cursor = old_head;
        while !node.tree.on_main_chain(&cursor) {
            let Some(body) = node.bodies.get(&cursor) else {
                break;
            };
            let parent = body.header.parent;
            let txs: Vec<Rc<Transaction>> = body.txs.iter().map(|t| Rc::new(t.clone())).collect();
            for tx in txs {
                if node.pool_ids.insert(tx.id()) {
                    node.pool.push_back(tx);
                }
            }
            cursor = parent;
        }
    }

    fn on_admit(
        &mut self,
        now: SimTime,
        to: NodeId,
        tx: Rc<Transaction>,
        relayed: bool,
        sched: &mut Scheduler<PoaEvent>,
    ) {
        let node = &mut self.nodes[to.index()];
        if !relayed {
            node.admission_backlog = node.admission_backlog.saturating_sub(1);
            node.cpu.charge(now, self.config.costs.sig_verify);
        }
        if node.crashed {
            return;
        }
        if !node.seen.insert(tx.id()) {
            return;
        }
        node.pool_ids.insert(tx.id());
        node.pool.push_back(Rc::clone(&tx));
        if !relayed {
            // Gossip to the other authorities so whoever owns the next step
            // can include it.
            let size = tx.byte_size();
            for peer in (0..self.network.node_count()).map(NodeId) {
                if peer == to {
                    continue;
                }
                if let Delivery::Deliver { at, corrupted } = self.network.send(now, to, peer, size)
                {
                    if !corrupted {
                        sched.schedule(
                            at,
                            PoaEvent::TxAdmit { to: peer, tx: Rc::clone(&tx), relayed: true },
                        );
                    }
                }
            }
        }
    }

    fn on_block(
        &mut self,
        now: SimTime,
        to: NodeId,
        block: Rc<Block>,
        from: NodeId,
        sched: &mut Scheduler<PoaEvent>,
    ) {
        if self.nodes[to.index()].crashed {
            return;
        }
        self.adopt_block(now, to, block, Some((from, sched)));
        self.refresh_confirmed(now);
    }

    fn on_block_request(
        &mut self,
        now: SimTime,
        to: NodeId,
        wanted: Hash256,
        from: NodeId,
        sched: &mut Scheduler<PoaEvent>,
    ) {
        let node = &self.nodes[to.index()];
        if node.crashed {
            return;
        }
        if let Some(body) = node.bodies.get(&wanted) {
            let body = Rc::clone(body);
            if let Delivery::Deliver { at, corrupted } =
                self.network.send(now, to, from, body.byte_size())
            {
                if !corrupted {
                    sched.schedule(at, PoaEvent::BlockArrive { to: from, block: body, from: to });
                }
            }
        }
    }

    fn refresh_confirmed(&mut self, now: SimTime) {
        let depth = self.config.confirm_depth;
        let node = &self.nodes[0];
        let upto = node.tree.confirmed_height(depth);
        while *self.confirmed_height < upto {
            let h = *self.confirmed_height + 1;
            let Some(id) = node.tree.main_chain_at(h) else {
                break;
            };
            let (Some(body), Some(receipts)) = (node.bodies.get(&id), node.receipts.get(&id))
            else {
                break;
            };
            self.confirmed.push(BlockSummary {
                id,
                height: h,
                proposer: body.header.proposer,
                confirmed_at_us: now.as_micros(),
                txs: receipts.clone(),
            });
            *self.confirmed_height = h;
        }
    }
}

impl BlockchainConnector for ParityChain {
    fn name(&self) -> &'static str {
        "parity"
    }

    fn node_count(&self) -> u32 {
        self.config.nodes
    }

    fn deploy(&mut self, bundle: &ContractBundle) -> Address {
        assert!(!self.started, "deploy contracts before the run starts");
        let addr = Address::contract(&Address::ZERO, self.nodes[0].seen.len() as u64);
        for node in &mut self.nodes {
            let head = node.tree.head();
            let root = node.roots[&head];
            node.state.set_root(root);
            node.state.install_contract(&addr, &bundle.svm).expect("setup store healthy");
            node.roots.insert(head, node.state.root());
        }
        addr
    }

    fn submit(&mut self, server: NodeId, tx: Transaction) -> bool {
        self.start();
        let node = &mut self.nodes[server.index()];
        if node.admission_backlog >= self.config.admission_queue_cap {
            // RPC throttled: Parity's ~80 tx/s per-server signing bound.
            return false;
        }
        if node.pool_ids.len() >= self.config.tx_pool_cap {
            // Transaction queue full: without this bound, admission (~80
            // tx/s/server) outruns the ~45 tx/s producer and accepted
            // transactions queue for the rest of the run — Parity instead
            // errors at the RPC, which is what keeps its latency low and
            // flat while throughput stays constant (Figure 5).
            return false;
        }
        let now = self.sched.now();
        let start = node.admission_busy_until.max(now + self.config.rpc_delay);
        let done = start + self.config.costs.sig_verify;
        node.admission_busy_until = done;
        node.admission_backlog += 1;
        self.sched
            .schedule(done, PoaEvent::TxAdmit { to: server, tx: Rc::new(tx), relayed: false });
        true
    }

    fn advance_to(&mut self, t: SimTime) {
        self.run(t);
    }

    fn now(&self) -> SimTime {
        self.sched.now()
    }

    fn confirmed_blocks_since(&mut self, height: u64) -> Vec<BlockSummary> {
        self.confirmed.iter().filter(|b| b.height > height).cloned().collect()
    }

    fn query(&mut self, q: &Query) -> Result<QueryResult, QueryError> {
        let node = &mut self.nodes[0];
        match q {
            Query::BlockTxs { height } => {
                let id = node.tree.main_chain_at(*height).ok_or(QueryError::NotFound)?;
                let body = node.bodies.get(&id).ok_or(QueryError::NotFound)?;
                let mut enc = Encoder::with_capacity(body.txs.len() * 48 + 4);
                enc.put_u32(body.txs.len() as u32);
                for tx in &body.txs {
                    enc.put_raw(tx.from.as_bytes()).put_raw(tx.to.as_bytes()).put_u64(tx.value);
                }
                let cost = SimDuration::from_micros(15 + 3 * body.txs.len() as u64);
                Ok(QueryResult { data: enc.finish(), server_cost: cost })
            }
            Query::AccountAtBlock { account, height } => {
                let id = node.tree.main_chain_at(*height).ok_or(QueryError::NotFound)?;
                let root = *node.roots.get(&id).ok_or(QueryError::NotFound)?;
                let acct = node
                    .state
                    .account_at(root, account)
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                Ok(QueryResult {
                    data: acct.balance.to_le_bytes().to_vec(),
                    server_cost: SimDuration::from_micros(40), // in-memory state: faster reads
                })
            }
            Query::Contract { address, payload } => {
                let head = node.tree.head();
                let root = node.roots[&head];
                node.state.set_root(root);
                let kp = bb_crypto::KeyPair::from_seed(0);
                let acct = node
                    .state
                    .account(&Address::from_public_key(&kp.public()))
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                let tx = Transaction::signed(&kp, acct.nonce, *address, 0, payload.clone());
                let height = node.tree.head_height();
                let res = node
                    .state
                    .apply_transaction(&tx, height, &self.vm, self.config.tx_gas_limit)
                    .map_err(|e| QueryError::Contract(e.to_string()))?;
                node.state.set_root(root);
                if !res.success {
                    return Err(QueryError::Contract(res.error.unwrap_or_else(|| "reverted".into())));
                }
                Ok(QueryResult {
                    data: res.output,
                    server_cost: self.config.costs.exec_time(res.gas_used),
                })
            }
        }
    }

    fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Crash(node) => {
                self.network.crash(node);
                self.nodes[node.index()].crashed = true;
            }
            Fault::Recover(node) => {
                self.network.recover(node);
                self.nodes[node.index()].crashed = false;
            }
            Fault::Delay(node, d) => self.network.set_extra_delay(node, d),
            Fault::Corrupt(node, p) => self.network.set_corrupt_prob(node, p),
            Fault::PartitionHalf { left } => self.network.partition_in_half(left),
            Fault::Heal => self.network.heal(),
        }
    }

    fn stats(&self) -> PlatformStats {
        let n = self.nodes.len();
        let mut cpu: Vec<f64> = Vec::new();
        let mut net: Vec<f64> = Vec::new();
        let mut mem_peak = self.mem_peak.max(self.config.costs.mem_base);
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
        for (i, node) in self.nodes.iter().enumerate() {
            let (h, m) = node.state.trie_cache_stats();
            cache_hits += h;
            cache_misses += m;
            let series = node.cpu.utilisation_series();
            if series.len() > cpu.len() {
                cpu.resize(series.len(), 0.0);
            }
            for (j, v) in series.iter().enumerate() {
                cpu[j] += v / n as f64;
            }
            let tx = self.network.tx_mbps_series(NodeId(i as u32));
            if tx.len() > net.len() {
                net.resize(tx.len(), 0.0);
            }
            for (j, v) in tx.iter().enumerate() {
                net[j] += v / n as f64;
            }
            mem_peak =
                mem_peak.max(self.config.costs.mem_base + node.state.store().stats().mem_bytes);
        }
        PlatformStats {
            blocks_total: self.blocks_produced,
            blocks_main: self.nodes[0].tree.main_chain_len(),
            txs_committed: self.confirmed.iter().map(|b| b.txs.len() as u64).sum(),
            disk_bytes: 0, // all state in memory
            mem_peak_bytes: mem_peak,
            cpu_utilisation: cpu,
            net_mbps: net,
            net_bytes: self.network.stats().bytes,
            trie_cache_hits: cache_hits,
            trie_cache_misses: cache_misses,
        }
    }

    fn preload_blocks(&mut self, blocks: Vec<Vec<Transaction>>) {
        assert!(!self.started, "preload before the run starts");
        for txs in blocks {
            let now = self.sched.now();
            for i in 0..self.nodes.len() {
                let node = &mut self.nodes[i];
                let parent = node.tree.head();
                let parent_root = node.roots[&parent];
                let height = node.tree.head_height() + 1;
                node.state.set_root(parent_root);
                let mut receipts = Vec::with_capacity(txs.len());
                for tx in &txs {
                    let ok = node
                        .state
                        .apply_transaction(tx, height, &self.vm, self.config.tx_gas_limit)
                        .map(|r| r.success)
                        .unwrap_or(false);
                    receipts.push((tx.id(), ok));
                }
                let header = BlockHeader {
                    parent,
                    height,
                    timestamp_us: now.as_micros(),
                    tx_root: merkle_root(&txs.iter().map(|t| t.id().0).collect::<Vec<_>>()),
                    state_root: node.state.root(),
                    proposer: NodeId(0),
                    difficulty: 1,
                    round: 0,
                };
                let block = Rc::new(Block { header, txs: txs.clone() });
                let id = block.id();
                node.roots.insert(id, node.state.root());
                node.receipts.insert(id, receipts.clone());
                node.bodies.insert(id, Rc::clone(&block));
                node.tree.insert(id, parent, 1);
                node.pruned.insert(id);
                if i == 0 {
                    self.blocks_produced += 1;
                    self.confirmed.push(BlockSummary {
                        id,
                        height,
                        proposer: NodeId(0),
                        confirmed_at_us: now.as_micros(),
                        txs: receipts,
                    });
                    self.confirmed_height = height;
                }
            }
        }
    }

    fn execute_direct(&mut self, tx: Transaction) -> DirectExec {
        let node = &mut self.nodes[0];
        let head = node.tree.head();
        let root = node.roots[&head];
        node.state.set_root(root);
        let height = node.tree.head_height();
        match node.state.apply_transaction(&tx, height, &self.vm, u64::MAX / 2) {
            Ok(res) => {
                let modeled = self.config.costs.modeled_mem(res.vm_peak_mem);
                self.mem_peak = self.mem_peak.max(modeled);
                node.roots.insert(head, node.state.root());
                DirectExec {
                    success: res.success,
                    duration: self.config.costs.sig_verify
                        + self.config.costs.exec_time(res.gas_used),
                    gas_used: res.gas_used,
                    modeled_mem: modeled,
                    output: res.output,
                    error: res.error,
                }
            }
            Err(e) => DirectExec {
                success: false,
                duration: self.config.costs.sig_verify,
                gas_used: 0,
                modeled_mem: 0,
                output: Vec::new(),
                error: Some(e.to_string()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bb_contracts::{donothing, ycsb};
    use bb_crypto::KeyPair;

    fn chain(nodes: u32) -> ParityChain {
        ParityChain::new(ParityConfig::with_nodes(nodes))
    }

    fn client_tx(seed: u64, nonce: u64, to: Address, payload: Vec<u8>) -> Transaction {
        Transaction::signed(&KeyPair::from_seed(seed), nonce, to, 0, payload)
    }

    #[test]
    fn blocks_tick_like_clockwork() {
        let mut c = chain(4);
        c.advance_to(SimTime::from_secs(30));
        let stats = c.stats();
        // One block per second; no forks beyond the block still in flight.
        assert!(stats.blocks_main >= 25, "main chain {}", stats.blocks_main);
        assert!(stats.blocks_total - stats.blocks_main <= 1);
    }

    #[test]
    fn transactions_confirm_in_seconds() {
        let mut c = chain(4);
        let contract = c.deploy(&ycsb::bundle());
        for nonce in 0..10 {
            assert!(c.submit(NodeId((nonce % 4) as u32), client_tx(1, nonce, contract, ycsb::write_call(nonce, b"v"))));
        }
        c.advance_to(SimTime::from_secs(15));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        assert_eq!(committed, 10);
    }

    #[test]
    fn producer_budget_caps_throughput() {
        let mut c = chain(2);
        let contract = c.deploy(&donothing::bundle());
        // Offer far more than 45 tx/s for 10 s from many senders.
        let mut submitted = 0;
        for seed in 0..20u64 {
            for nonce in 0..60 {
                if c.submit(NodeId((seed % 2) as u32), client_tx(seed, nonce, contract, donothing::call())) {
                    submitted += 1;
                }
            }
        }
        assert!(submitted > 300, "admission rejected too aggressively: {submitted}");
        c.advance_to(SimTime::from_secs(10));
        let committed: usize = c.confirmed_blocks_since(0).iter().map(|b| b.txs.len()).sum();
        // ~45 tx per block-second, minus confirmation lag.
        let rate = committed as f64 / 10.0;
        assert!(rate > 25.0 && rate < 60.0, "rate {rate}");
    }

    #[test]
    fn admission_throttles_at_the_rpc() {
        let mut c = chain(1);
        let contract = c.deploy(&donothing::bundle());
        let mut accepted = 0;
        let mut rejected = 0;
        for nonce in 0..1000 {
            if c.submit(NodeId(0), client_tx(1, nonce, contract, donothing::call())) {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "throttling never kicked in");
        assert_eq!(accepted, c.config.admission_queue_cap as u32);
    }

    #[test]
    fn crash_leaves_throughput_steady() {
        let mut c = chain(8);
        c.advance_to(SimTime::from_secs(20));
        let before = c.stats().blocks_main;
        for i in 4..8 {
            c.inject(Fault::Crash(NodeId(i)));
        }
        c.advance_to(SimTime::from_secs(40));
        let after = c.stats().blocks_main;
        // Survivors take over the dead authorities' slots: ~1 block/s still.
        assert!(after - before >= 17, "throughput dropped: {before} → {after}");
    }

    #[test]
    fn partition_forks_then_heals() {
        let mut c = chain(8);
        c.advance_to(SimTime::from_secs(10));
        c.inject(Fault::PartitionHalf { left: 4 });
        c.advance_to(SimTime::from_secs(40));
        c.inject(Fault::Heal);
        c.advance_to(SimTime::from_secs(80));
        let stats = c.stats();
        assert!(
            stats.blocks_total > stats.blocks_main,
            "no forks under partition: total={} main={}",
            stats.blocks_total,
            stats.blocks_main
        );
        let heads: Vec<u64> = c.nodes.iter().map(|n| n.tree.head_height()).collect();
        let spread = heads.iter().max().unwrap() - heads.iter().min().unwrap();
        assert!(spread <= 2, "heads did not reconverge: {heads:?}");
    }

    #[test]
    fn in_memory_state_cap_produces_oom() {
        let mut config = ParityConfig::with_nodes(1);
        config.node_mem_bytes = config.costs.mem_base + (3 << 20); // tiny state budget
        let mut c = ParityChain::new(config);
        let contract = c.deploy(&bb_contracts::ioheavy::bundle());
        // Write batches until the in-memory trie blows the cap.
        let mut saw_oom = false;
        for i in 0..40u64 {
            let tx = client_tx(1, i, contract, bb_contracts::ioheavy::write_call(i * 500, 500));
            let res = c.execute_direct(tx);
            if !res.success {
                let err = res.error.unwrap_or_default();
                assert!(err.contains("out of space") || err.contains("storage"), "{err}");
                saw_oom = true;
                break;
            }
        }
        assert!(saw_oom, "state cap never hit");
    }

    #[test]
    fn historical_queries_work() {
        let mut c = chain(2);
        let alice = KeyPair::from_seed(1);
        let bob = Address::from_index(7);
        c.preload_blocks(vec![
            vec![Transaction::signed(&alice, 0, bob, 11, vec![])],
            vec![Transaction::signed(&alice, 1, bob, 22, vec![])],
        ]);
        let r = c.query(&Query::AccountAtBlock { account: bob, height: 1 }).unwrap();
        assert_eq!(i64::from_le_bytes(r.data.try_into().unwrap()), 11);
        let r = c.query(&Query::AccountAtBlock { account: bob, height: 2 }).unwrap();
        assert_eq!(i64::from_le_bytes(r.data.try_into().unwrap()), 33);
    }
}
